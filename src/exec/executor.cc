#include "src/exec/executor.h"

#include <algorithm>
#include <chrono>

#include "src/common/assert.h"

namespace sfs::exec {

namespace {

using Clock = std::chrono::steady_clock;

Tick ToTicks(Clock::duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

}  // namespace

Executor::Executor(sched::Scheduler& scheduler, const Config& config)
    : scheduler_(scheduler), config_(config) {
  SFS_CHECK(config_.quantum > 0);
}

Executor::~Executor() {
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->shutdown.store(true);
      {
        std::lock_guard<std::mutex> lk(w->mu);
      }
      w->cv.notify_all();
      w->thread.join();
    }
  }
}

void Executor::AddTask(sched::ThreadId tid, sched::Weight weight, std::function<bool()> work) {
  SFS_CHECK(!started_);
  auto worker = std::make_unique<Worker>();
  worker->tid = tid;
  worker->weight = weight;
  worker->work = std::move(work);
  workers_.push_back(std::move(worker));
}

void Executor::WorkerBody(Worker& w) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(w.mu);
      w.cv.wait(lk, [&] { return w.granted || w.shutdown.load(); });
      if (w.shutdown.load()) {
        return;
      }
    }
    const Clock::time_point start = Clock::now();
    bool done = false;
    while (!w.preempt.load(std::memory_order_relaxed)) {
      if (!w.work()) {
        done = true;
        break;
      }
    }
    const Clock::time_point end = Clock::now();
    {
      std::lock_guard<std::mutex> lk(w.mu);
      w.granted = false;
    }
    w.preempt.store(false);

    Report report;
    report.tid = w.tid;
    report.ran = std::max<Tick>(0, ToTicks(end - start));
    report.done = done;
    report.yield_delay = ToTicks(end.time_since_epoch());  // absolute; resolved by dispatcher
    {
      std::lock_guard<std::mutex> lk(report_mu_);
      reports_.push_back(report);
    }
    report_cv_.notify_one();
    if (done) {
      return;
    }
  }
}

void Executor::Grant(Worker& w) {
  {
    std::lock_guard<std::mutex> lk(w.mu);
    w.granted = true;
  }
  w.cv.notify_one();
}

Tick Executor::Run(Tick wall_limit) {
  SFS_CHECK(!started_);
  started_ = true;

  struct CpuState {
    Worker* running = nullptr;
    Clock::time_point deadline;
    Clock::time_point preempt_sent_at;
    bool preempt_sent = false;
  };

  const Clock::time_point t0 = Clock::now();
  const Clock::time_point wall_end = t0 + std::chrono::microseconds(wall_limit);

  // Register and launch every worker (they start waiting for a grant).
  for (auto& w : workers_) {
    scheduler_.AddThread(w->tid, w->weight);
    w->thread = std::thread([this, worker = w.get()] { WorkerBody(*worker); });
  }

  std::vector<CpuState> cpus(static_cast<std::size_t>(scheduler_.num_cpus()));
  auto find_worker = [&](sched::ThreadId tid) -> Worker* {
    for (auto& w : workers_) {
      if (w->tid == tid) {
        return w.get();
      }
    }
    SFS_CHECK(false);
    return nullptr;
  };

  int active = static_cast<int>(workers_.size());
  int running_count = 0;

  auto dispatch = [&](std::size_t cpu_idx) {
    const sched::ThreadId tid = scheduler_.PickNext(static_cast<sched::CpuId>(cpu_idx));
    if (tid == sched::kInvalidThread) {
      cpus[cpu_idx].running = nullptr;
      return;
    }
    Worker* w = find_worker(tid);
    cpus[cpu_idx].running = w;
    cpus[cpu_idx].deadline = Clock::now() + std::chrono::microseconds(config_.quantum);
    cpus[cpu_idx].preempt_sent = false;
    ++dispatches_;
    ++running_count;
    Grant(*w);
  };

  for (std::size_t c = 0; c < cpus.size(); ++c) {
    dispatch(c);
  }

  while (active > 0 && Clock::now() < wall_end) {
    // Next timer event: earliest quantum deadline among running CPUs.
    Clock::time_point next_deadline = wall_end;
    for (const auto& cpu : cpus) {
      if (cpu.running != nullptr && !cpu.preempt_sent) {
        next_deadline = std::min(next_deadline, cpu.deadline);
      }
    }

    Report report;
    bool have_report = false;
    {
      std::unique_lock<std::mutex> lk(report_mu_);
      report_cv_.wait_until(lk, next_deadline, [&] { return !reports_.empty(); });
      if (!reports_.empty()) {
        report = reports_.front();
        reports_.pop_front();
        have_report = true;
      }
    }

    if (have_report) {
      // Find the CPU this worker was running on.
      std::size_t cpu_idx = cpus.size();
      for (std::size_t c = 0; c < cpus.size(); ++c) {
        if (cpus[c].running != nullptr && cpus[c].running->tid == report.tid) {
          cpu_idx = c;
          break;
        }
      }
      SFS_CHECK(cpu_idx < cpus.size());
      CpuState& cpu = cpus[cpu_idx];
      Worker* w = cpu.running;
      cpu.running = nullptr;
      --running_count;

      scheduler_.Charge(report.tid, report.ran);
      w->cpu_time += report.ran;
      if (cpu.preempt_sent) {
        const Tick latency =
            report.yield_delay - ToTicks(cpu.preempt_sent_at.time_since_epoch());
        preempt_latencies_.Add(static_cast<double>(std::max<Tick>(0, latency)));
      }
      if (report.done) {
        scheduler_.RemoveThread(report.tid);
        --active;
      }
      dispatch(cpu_idx);
      continue;
    }

    // Timer: preempt every CPU whose quantum expired.
    const Clock::time_point now = Clock::now();
    for (auto& cpu : cpus) {
      if (cpu.running != nullptr && !cpu.preempt_sent && now >= cpu.deadline) {
        cpu.preempt_sent = true;
        cpu.preempt_sent_at = now;
        cpu.running->preempt.store(true, std::memory_order_relaxed);
      }
    }
  }

  // Wind down: stop everything still on a CPU and drain their final reports.
  for (auto& cpu : cpus) {
    if (cpu.running != nullptr) {
      cpu.running->preempt.store(true, std::memory_order_relaxed);
    }
  }
  while (running_count > 0) {
    Report report;
    {
      std::unique_lock<std::mutex> lk(report_mu_);
      report_cv_.wait(lk, [&] { return !reports_.empty(); });
      report = reports_.front();
      reports_.pop_front();
    }
    for (auto& cpu : cpus) {
      if (cpu.running != nullptr && cpu.running->tid == report.tid) {
        scheduler_.Charge(report.tid, report.ran);
        cpu.running->cpu_time += report.ran;
        if (report.done) {
          scheduler_.RemoveThread(report.tid);
          --active;
        }
        cpu.running = nullptr;
        --running_count;
        break;
      }
    }
  }
  // Unregister tasks that never finished, then stop their (waiting) threads.
  for (auto& w : workers_) {
    if (scheduler_.Contains(w->tid)) {
      scheduler_.RemoveThread(w->tid);
    }
    w->shutdown.store(true);
    {
      std::lock_guard<std::mutex> lk(w->mu);
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
  return ToTicks(Clock::now() - t0);
}

Tick Executor::CpuTime(sched::ThreadId tid) const {
  for (const auto& w : workers_) {
    if (w->tid == tid) {
      return w->cpu_time;
    }
  }
  SFS_CHECK(false);
  return 0;
}

}  // namespace sfs::exec

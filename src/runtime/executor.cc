#include "src/runtime/executor.h"

#include <algorithm>
#include <utility>

#include "src/common/assert.h"
#include "src/runtime/affinity.h"

namespace sfs::runtime {

namespace {

using Clock = std::chrono::steady_clock;

Tick ToTicks(Clock::duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

std::chrono::microseconds FromTicks(Tick t) { return std::chrono::microseconds(t); }

std::int64_t DurationNs(Clock::duration d) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
}

}  // namespace

Executor::Executor(sched::Scheduler& scheduler, const Config& config)
    : scheduler_(scheduler), config_(config), trace_(config.trace) {
  SFS_CHECK(config_.quantum > 0);
  idle_recheck_ = config_.idle_recheck > 0 ? config_.idle_recheck : config_.quantum;
  if (config_.metrics != nullptr) {
    SFS_CHECK(config_.metrics->num_shards() >= scheduler.num_cpus());
    metrics_ = config_.metrics;
  } else {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>(scheduler.num_cpus());
    metrics_ = own_metrics_.get();
  }
  dispatch_hist_ = &metrics_->GetHistogram("exec/dispatch_latency_ns");
  lock_wait_hist_ = &metrics_->GetHistogram("exec/lock_wait_ns");
  run_hist_ = &metrics_->GetHistogram("exec/run_interval_ns");
  wake_apply_hist_ = &metrics_->GetHistogram("exec/wake_apply_ns");
  wake_dispatch_hist_ = &metrics_->GetHistogram("exec/wake_to_dispatch_ns");
  if (trace_ != nullptr) {
    SFS_CHECK(trace_->clock() == obs::Trace::Clock::kWallNanos);
    SFS_CHECK(trace_->num_cpus() >= scheduler.num_cpus());
    scheduler_.SetTrace(trace_);
  }
}

Executor::~Executor() {
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->shutdown.store(true);
      {
        common::MutexLock lk(w->mu);
      }
      w->cv.NotifyAll();
      w->thread.join();
    }
  }
}

void Executor::AddTask(sched::ThreadId tid, sched::Weight weight,
                       std::function<WorkResult()> work) {
  SFS_CHECK(!started_);
  auto worker = std::make_unique<Worker>();
  worker->tid = tid;
  worker->weight = weight;
  worker->work = std::move(work);
  workers_.push_back(std::move(worker));
}

void Executor::AddTask(sched::ThreadId tid, sched::Weight weight,
                       std::function<bool()> work) {
  AddTask(tid, weight, [body = std::move(work)] {
    return body() ? WorkResult::Continue() : WorkResult::Done();
  });
}

common::UniqueMutexLock Executor::MaybeSerialize() {
  if (config_.serialize_dispatch) {
    return common::UniqueMutexLock(serial_mu_);
  }
  return common::UniqueMutexLock();
}

void Executor::WorkerBody(Worker& w) {
  for (;;) {
    sched::CpuId cpu;
    {
      common::MutexLock lk(w.mu);
      while (!w.granted && !w.shutdown.load()) {
        w.cv.Wait(w.mu);
      }
      if (w.shutdown.load()) {
        return;
      }
      cpu = w.granted_cpu;
    }
    const Clock::time_point start = Clock::now();
    Report report;
    report.tid = w.tid;
    while (true) {
      if (w.preempt.load(std::memory_order_relaxed)) {
        report.preempt_observed = true;
        break;
      }
      const WorkResult result = w.work();
      if (result.kind != WorkResult::Kind::kContinue) {
        report.kind = result.kind;
        report.block_for = result.block_for;
        break;
      }
    }
    const Clock::time_point end = Clock::now();
    report.ran = std::max<Tick>(0, ToTicks(end - start));
    report.yielded_at = end;
    {
      common::MutexLock lk(w.mu);
      w.granted = false;
    }
    w.preempt.store(false);

    const bool done = report.kind == WorkResult::Kind::kDone;
    Cpu& mailbox = *cpus_[static_cast<std::size_t>(cpu)];
    {
      common::MutexLock lk(mailbox.mu);
      SFS_CHECK(!mailbox.report.has_value());
      mailbox.report = report;
    }
    mailbox.cv.NotifyAll();
    if (done) {
      return;
    }
  }
}

void Executor::Grant(Worker& w, sched::CpuId cpu) {
  // The caller has already cleared any stale preempt flag under cpu.mu (the
  // same lock pokes hold while setting it), so the flag cannot be erased/lost
  // across this handoff.
  {
    common::MutexLock lk(w.mu);
    w.granted = true;
    w.granted_cpu = cpu;
  }
  w.cv.NotifyOne();
}

void Executor::KickOneParked(sched::CpuId hint) {
  // Round-robin from hint+1 so repeated kicks fan work out across CPUs
  // instead of hammering one neighbour.  The parked flag is advisory: a CPU
  // between its empty pick and its park is invisible here, and one that just
  // woke may eat a kick for nothing — either way the idle_recheck backstop
  // bounds the cost, and the unconditional home-CPU kick on every wakeup
  // means no wakeup depends on this scan for liveness.
  const std::size_t n = cpus_.size();
  for (std::size_t i = 1; i <= n; ++i) {
    Cpu& c = *cpus_[(static_cast<std::size_t>(hint) + i) % n];
    if (c.parked.load(std::memory_order_acquire)) {
      c.park.Kick();
      kicks_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void Executor::KickAllParked() {
  // Epoch bumps on every slot (parked or not) preserve the old
  // version-counter semantics: a dispatcher between its token snapshot and
  // its park re-checks and falls through.  A kick at an empty slot skips the
  // wake syscall, so the all-busy case stays cheap.
  for (auto& c : cpus_) {
    c->park.Kick();
  }
  kicks_.fetch_add(static_cast<std::int64_t>(cpus_.size()), std::memory_order_relaxed);
}

void Executor::KickAfterStateChange(sched::CpuId hint) {
  if (!targeted()) {
    KickAllParked();
    return;
  }
  // Only fan out when there is runnable work nobody is running
  // (runnable_count counts running threads too, so compare against the
  // granted-CPU count).  Both loads are racy snapshots; a stale read at worst
  // delays the fan-out by one idle recheck.
  if (scheduler_.runnable_count() > running_cpus_.load(std::memory_order_relaxed)) {
    KickOneParked(hint);
  }
}

void Executor::StopAll() {
  stop_.store(true);
  KickAllParked();
  for (auto& cpu : cpus_) {
    {
      common::MutexLock lk(cpu->mu);
    }
    cpu->cv.NotifyAll();
  }
  {
    common::MutexLock lk(timer_mu_);
  }
  timer_cv_.NotifyAll();
}

bool Executor::ApplyWakeupLocked(sched::CpuId home, sched::ThreadId tid,
                                 Clock::time_point due, std::vector<Tick>& elapsed_scratch,
                                 PreemptPoke* poke) {
  *poke = PreemptPoke{};
  // The producer validated nothing (the timer holds no scheduler lock when it
  // routes or try-locks); do it here.  The thread may have exited since
  // blocking (stale wakeup), and the runnable re-check is defensive against
  // duplicate deliveries.
  if (!scheduler_.Contains(tid) || scheduler_.IsRunnable(tid)) {
    return false;
  }
  // The home recorded at Block time must still be the shard this dispatch
  // lock covers — a blocked thread cannot migrate (scheduler contract).
  SFS_DCHECK(scheduler_.HomeCpu(tid) == sched::kInvalidCpu ||
             scheduler_.HomeCpu(tid) == home);
  scheduler_.Wakeup(tid);
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  const Clock::time_point now = Clock::now();
  wake_apply_hist_->Record(home, std::max<std::int64_t>(0, DurationNs(now - due)));
  WorkerByTid(tid).wake_pending_ns.store(WallNs(due), std::memory_order_relaxed);
  if (trace_) {
    // Own ring: in targeted mode the wakeup transition belongs to the home
    // dispatcher, keeping the per-CPU rings single-writer.
    trace_->Record(home, obs::TraceEventKind::kWakeup, WallNs(now), tid);
  }
  // reschedule_idle(): does the wakeup warrant preempting a running thread?
  // elapsed[c] approximates each CPU's uncharged run time from the
  // executor's own grant bookkeeping (advisory atomics — reading the
  // scheduler's per-CPU running table here would race foreign shards).
  const Tick now_ticks = ToTicks(now - t0_);
  elapsed_scratch.assign(cpus_.size(), 0);
  for (std::size_t c = 0; c < cpus_.size(); ++c) {
    if (cpus_[c]->running_hint.load(std::memory_order_relaxed) != sched::kInvalidThread) {
      elapsed_scratch[c] = std::max<Tick>(
          0, now_ticks - cpus_[c]->grant_at.load(std::memory_order_relaxed));
    }
  }
  const sched::CpuId target_cpu = scheduler_.SuggestPreemption(tid, elapsed_scratch);
  if (target_cpu != sched::kInvalidCpu) {
    // Safe under this dispatch lock: sharded policies only ever suggest the
    // woken thread's home shard (ours), and flat policies' dispatch lock is
    // global.
    const sched::ThreadId target_tid = scheduler_.RunningOn(target_cpu);
    if (target_tid != sched::kInvalidThread) {
      *poke = PreemptPoke{target_cpu, target_tid};
    }
  }
  return true;
}

int Executor::DrainMailboxLocked(sched::CpuId cpu_idx) {
  Cpu& cpu = *cpus_[static_cast<std::size_t>(cpu_idx)];
  int woken = 0;
  cpu.mailbox.DrainAll([&](WakeMsg&& msg) {
    PreemptPoke poke;
    if (!ApplyWakeupLocked(cpu_idx, msg.tid, msg.due, cpu.elapsed_scratch, &poke)) {
      return;
    }
    if (poke.cpu != sched::kInvalidCpu) {
      cpu.pokes.push_back(poke);
    }
    ++woken;
  });
  return woken;
}

void Executor::PokePreempt(const PreemptPoke& poke) {
  Cpu& target = *cpus_[static_cast<std::size_t>(poke.cpu)];
  common::MutexLock lk(target.mu);
  // Only preempt if that CPU's dispatcher still has this worker granted and
  // its report is not already in the mailbox; the flag store happens under
  // target.mu so it cannot race a Grant-time clear (which also holds
  // target.mu) and truncate an unrelated fresh slice.
  if (target.running_tid == poke.tid && !target.preempt_sent && !target.report.has_value()) {
    target.preempt_sent = true;
    target.preempt_sent_at = Clock::now();
    WorkerByTid(poke.tid).preempt.store(true, std::memory_order_relaxed);
  }
}

void Executor::ApplyPreemptPokes(Cpu& cpu) {
  for (const PreemptPoke& poke : cpu.pokes) {
    PokePreempt(poke);
  }
  cpu.pokes.clear();
}

void Executor::HandleReport(sched::CpuId cpu_idx, const Report& report, bool preempt_sent,
                            Clock::time_point preempt_sent_at) {
  Worker* w = &WorkerByTid(report.tid);
  if (preempt_sent && report.preempt_observed) {
    // Raw time-point subtraction: both instants keep the clock's native
    // resolution, so the latency is not the difference of two independently
    // truncated values.  (A negative value is still possible if the worker
    // was already past its flag check when the flag landed; clamp to zero.)
    const double latency_us =
        static_cast<double>(DurationNs(report.yielded_at - preempt_sent_at)) / 1000.0;
    cpus_[static_cast<std::size_t>(cpu_idx)]->preempt_latencies.Add(
        std::max(0.0, latency_us));
    preemptions_.fetch_add(1, std::memory_order_relaxed);
  }

  if (trace_) {
    // Own ring: HandleReport always runs on cpu_idx's dispatcher thread.
    trace_->Record(cpu_idx, obs::TraceEventKind::kCharge, WallNs(report.yielded_at),
                   report.tid, report.ran * 1000);
  }
  switch (report.kind) {
    case WorkResult::Kind::kContinue: {
      if (config_.batch_dispatch) {
        // Park the charge; the dispatcher applies it under its next
        // LockDispatch hold, just before PickNext.  The thread stays "running"
        // in scheduler state until then, so no kick is needed either — nothing
        // another dispatcher could newly pick has appeared.
        Cpu& cpu = *cpus_[static_cast<std::size_t>(cpu_idx)];
        cpu.pending_charge_tid = report.tid;
        cpu.pending_charge_ran = report.ran;
        return;
      }
      auto serial = MaybeSerialize();
      auto guard = scheduler_.LockDispatch(cpu_idx);
      scheduler_.Charge(report.tid, report.ran);
      w->cpu_time += report.ran;
      break;
    }
    case WorkResult::Kind::kDone: {
      {
        auto serial = MaybeSerialize();
        auto guard = scheduler_.LockLifecycle();
        scheduler_.Charge(report.tid, report.ran);
        w->cpu_time += report.ran;
        scheduler_.RemoveThread(report.tid);
        if (trace_) {
          trace_->RecordLifecycle(obs::TraceEventKind::kDeparture,
                                  WallNs(report.yielded_at), report.tid);
        }
      }
      if (active_.fetch_sub(1) == 1) {
        StopAll();
      }
      break;
    }
    case WorkResult::Kind::kBlock: {
      {
        auto serial = MaybeSerialize();
        if (targeted()) {
          // Sanctioned lifecycle relaxation (scheduler.h): the thread just
          // ran on this CPU, so this is its home shard and LockDispatch alone
          // brackets Charge-then-Block atomically against picks and steals
          // (both lock this shard).  The block record goes to our own CPU
          // ring, keeping the per-CPU rings single-writer.
          auto guard = scheduler_.LockDispatch(cpu_idx);
          scheduler_.Charge(report.tid, report.ran);
          w->cpu_time += report.ran;
          scheduler_.Block(report.tid);
          if (trace_) {
            trace_->Record(cpu_idx, obs::TraceEventKind::kBlock, WallNs(report.yielded_at),
                           report.tid, report.block_for * 1000);
          }
        } else {
          // Charge-then-Block must be atomic against other dispatchers:
          // between the two calls the thread is runnable and not running, so
          // a concurrent PickNext could grab it and Block would fire on a
          // running thread.
          auto guard = scheduler_.LockLifecycle();
          scheduler_.Charge(report.tid, report.ran);
          w->cpu_time += report.ran;
          scheduler_.Block(report.tid);
          if (trace_) {
            trace_->RecordLifecycle(obs::TraceEventKind::kBlock, WallNs(report.yielded_at),
                                    report.tid, report.block_for * 1000);
          }
        }
      }
      bool nudge_timer = false;
      {
        common::MutexLock lk(timer_mu_);
        const Clock::time_point at = Clock::now() + FromTicks(report.block_for);
        // The timer parks until the earliest pending deadline; only a new
        // front-of-queue deadline (or the empty->nonempty edge) moves it.
        nudge_timer = wake_queue_.empty() || at < wake_queue_.top().at;
        wake_queue_.push(PendingWakeup{at, report.tid, cpu_idx});
      }
      if (nudge_timer) {
        timer_cv_.NotifyAll();
      }
      break;
    }
  }
  // Work conservation: the charge (and any block/exit) changed scheduler
  // state; an idle CPU may now have work to pick or steal.
  KickAfterStateChange(cpu_idx);
}

void Executor::DispatcherLoop(sched::CpuId cpu_idx) {
  Cpu& cpu = *cpus_[static_cast<std::size_t>(cpu_idx)];
  if (config_.pin_dispatchers) {
    // Shard-to-core placement: dispatcher c (and every slice it grants) runs
    // on core c mod cores.  Best-effort — a failed pin just leaves the thread
    // floating, as before.
    PinCurrentThreadToCore(static_cast<int>(cpu_idx) % std::max(1, HardwareCores()));
  }
  while (!stop_.load()) {
    if (Clock::now() >= wall_end_) {
      break;
    }
    // Park-token snapshot BEFORE the final look for work (parking.h
    // protocol): any kick landing after this instant cancels the park below,
    // so a wakeup pushed between our empty pick and our park is never lost.
    const common::ParkingSlot::Token park_token = cpu.park.Prepare();
    sched::ThreadId tid = sched::kInvalidThread;
    Tick quantum = config_.quantum;
    const Clock::time_point pick_start = Clock::now();
    Clock::time_point lock_acquired;
    {
      auto serial = MaybeSerialize();
      auto guard = scheduler_.LockDispatch(cpu_idx);
      lock_acquired = Clock::now();
      if (trace_) {
        // Timestamp hint for the scheduler's own steal/rebalance records.
        trace_->PublishNow(WallNs(lock_acquired));
      }
      // One decision batch per lock hold: queued wakeups, the previous
      // slice's deferred charge, then the pick.
      if (targeted()) {
        DrainMailboxLocked(cpu_idx);
      }
      if (cpu.pending_charge_tid != sched::kInvalidThread) {
        // Config::batch_dispatch: the previous slice's deferred charge shares
        // this lock hold with the pick.
        scheduler_.Charge(cpu.pending_charge_tid, cpu.pending_charge_ran);
        WorkerByTid(cpu.pending_charge_tid).cpu_time += cpu.pending_charge_ran;
        cpu.pending_charge_tid = sched::kInvalidThread;
      }
      tid = scheduler_.PickNext(cpu_idx);
      if (tid != sched::kInvalidThread) {
        quantum = std::min(quantum, std::max<Tick>(1, scheduler_.QuantumFor(tid)));
      }
    }
    ApplyPreemptPokes(cpu);  // outside the guard: Cpu::mu is a leaf lock
    const Clock::time_point picked = Clock::now();
    const std::int64_t lock_wait_ns = DurationNs(lock_acquired - pick_start);
    lock_wait_hist_->Record(cpu_idx, lock_wait_ns);

    if (tid == sched::kInvalidThread) {
      // Nothing runnable here: park on our own slot.  Every producer that
      // could create work for us kicks this slot (wakeup routing, baton
      // passing, broadcast mode, shutdown); the bounded deadline is only the
      // backstop for the advisory parked-flag scan in KickOneParked.
      const Clock::time_point park_deadline =
          std::min(wall_end_, Clock::now() + FromTicks(idle_recheck_));
      cpu.parked.store(true, std::memory_order_seq_cst);
      if (!stop_.load()) {
        cpu.park.ParkUntil(park_token, park_deadline);
      }
      cpu.parked.store(false, std::memory_order_relaxed);
      continue;
    }

    const std::int64_t dispatch_ns = DurationNs(picked - pick_start);
    dispatch_hist_->Record(cpu_idx, dispatch_ns);
    dispatches_.fetch_add(1, std::memory_order_relaxed);
    if (trace_) {
      trace_->Record(cpu_idx, obs::TraceEventKind::kLockWait, WallNs(lock_acquired), tid,
                     lock_wait_ns);
      trace_->Record(cpu_idx, obs::TraceEventKind::kPick, WallNs(picked), tid,
                     dispatch_ns - lock_wait_ns);
      trace_->Record(cpu_idx, obs::TraceEventKind::kGrant, WallNs(picked), tid,
                     quantum * 1000);  // granted quantum, ns
    }

    Worker* w = &WorkerByTid(tid);
    // Wake-to-dispatch sample: if this grant ends a pending wakeup, the
    // latency runs from the timer deadline to this pick.
    const std::int64_t wake_due_ns =
        w->wake_pending_ns.exchange(-1, std::memory_order_relaxed);
    if (wake_due_ns >= 0) {
      wake_dispatch_hist_->Record(cpu_idx,
                                  std::max<std::int64_t>(0, WallNs(picked) - wake_due_ns));
    }
    {
      common::MutexLock lk(cpu.mu);
      // Clear any stale preempt flag (e.g. a poke that raced with the
      // worker's previous voluntary yield) before publishing running_tid:
      // pokes only store the flag while holding cpu.mu *after* seeing
      // running_tid, so a wakeup preemption can never be erased by this clear.
      w->preempt.store(false);
      cpu.running_tid = tid;
      cpu.preempt_sent = false;
    }
    cpu.grant_at.store(ToTicks(picked - t0_), std::memory_order_relaxed);
    cpu.running_hint.store(tid, std::memory_order_relaxed);
    running_cpus_.fetch_add(1, std::memory_order_relaxed);
    Grant(*w, cpu_idx);
    // A dispatch is itself a state change: a previously unstealable shard may
    // now be busy, making its queued threads fair game for idle thieves.  In
    // targeted mode this is the baton pass — one more parked CPU wakes if
    // runnable work remains beyond what is running.
    KickAfterStateChange(cpu_idx);

    const Clock::time_point deadline = std::min(picked + FromTicks(quantum), wall_end_);
    Report report;
    bool have_report = false;
    bool preempt_sent = false;
    Clock::time_point preempt_sent_at{};
    while (!have_report) {
      bool want_drain = false;
      {
        common::MutexLock lk(cpu.mu);
        for (;;) {
          if (cpu.report.has_value()) {
            break;
          }
          // Mid-quantum mailbox service: a wakeup routed here while we are
          // busy must become runnable (and possibly preempt, or be stolen by
          // a kicked peer) now, not when this slice ends.  The timer nudges
          // cpu.cv after every push; checking before the first wait covers a
          // push that landed before we got here.
          if (targeted() && !cpu.mailbox.Empty()) {
            want_drain = true;
            break;
          }
          if (cpu.cv.WaitUntil(cpu.mu, deadline) == std::cv_status::timeout) {
            break;
          }
        }
        if (!cpu.report.has_value() && !want_drain) {
          // Quantum expired (or the run is ending): preempt the worker —
          // unless a wakeup poke already preempted this slice, whose earlier
          // flag-set instant must survive or the recorded preempt-to-yield
          // latency would shrink.
          if (!cpu.preempt_sent) {
            cpu.preempt_sent = true;
            cpu.preempt_sent_at = Clock::now();
            w->preempt.store(true, std::memory_order_relaxed);
          }
          // The worker is guaranteed to observe the flag within one work unit.
          while (!cpu.report.has_value()) {
            cpu.cv.Wait(cpu.mu);
          }
        }
        if (cpu.report.has_value()) {
          report = *cpu.report;
          cpu.report.reset();
          preempt_sent = cpu.preempt_sent;
          preempt_sent_at = cpu.preempt_sent_at;
          cpu.preempt_sent = false;
          cpu.running_tid = sched::kInvalidThread;
          have_report = true;
        }
      }
      if (!have_report) {
        // want_drain: apply the queued wakeups under our dispatch lock, poke
        // any suggested preemption (possibly our own slice), hand spare work
        // to a parked peer, then resume waiting out the quantum.
        {
          auto serial = MaybeSerialize();
          auto guard = scheduler_.LockDispatch(cpu_idx);
          if (trace_) {
            trace_->PublishNow(WallNs(Clock::now()));
          }
          DrainMailboxLocked(cpu_idx);
        }
        ApplyPreemptPokes(cpu);
        KickAfterStateChange(cpu_idx);
      }
    }
    cpu.running_hint.store(sched::kInvalidThread, std::memory_order_relaxed);
    running_cpus_.fetch_sub(1, std::memory_order_relaxed);
    const std::int64_t slice_ns = DurationNs(report.yielded_at - picked);
    run_hist_->Record(cpu_idx, slice_ns);
    if (trace_) {
      trace_->Record(cpu_idx, obs::TraceEventKind::kRun, WallNs(picked), tid, slice_ns);
      if (preempt_sent && report.preempt_observed) {
        // Recorded here (not where the flag was set) so pokers never write
        // another CPU's ring; arg = flag-set-to-yield latency, ns.
        trace_->Record(cpu_idx, obs::TraceEventKind::kPreempt, WallNs(preempt_sent_at),
                       tid,
                       std::max<std::int64_t>(
                           0, DurationNs(report.yielded_at - preempt_sent_at)));
      }
    }
    HandleReport(cpu_idx, report, preempt_sent, preempt_sent_at);
  }
  // No slice is ever in flight here: an iteration that grants always waits
  // out the report (preempting at deadline = min(quantum end, wall_end_), so
  // the wall limit itself winds the last slice down) and charges it before
  // the loop re-checks stop_/wall_end_ — except a batch_dispatch charge parked
  // by the final slice, flushed here so the thread is not left "running" in
  // scheduler state (Run()'s RemoveThread pass depends on that) and its CPU
  // time is fully accounted.
  if (cpu.pending_charge_tid != sched::kInvalidThread) {
    {
      auto serial = MaybeSerialize();
      auto guard = scheduler_.LockDispatch(cpu_idx);
      scheduler_.Charge(cpu.pending_charge_tid, cpu.pending_charge_ran);
      WorkerByTid(cpu.pending_charge_tid).cpu_time += cpu.pending_charge_ran;
      cpu.pending_charge_tid = sched::kInvalidThread;
    }
    KickAfterStateChange(cpu_idx);
  }
  {
    common::MutexLock lk(cpu.mu);
    SFS_CHECK(cpu.running_tid == sched::kInvalidThread);
  }
}

void Executor::TimerLoop() {
  std::vector<PendingWakeup> due;
  std::vector<Tick> elapsed;
  for (;;) {
    due.clear();
    {
      common::MutexLock lk(timer_mu_);
      for (;;) {
        if (stop_.load()) {
          return;
        }
        const Clock::time_point now = Clock::now();
        if (now >= wall_end_) {
          return;
        }
        if (!wake_queue_.empty() && wake_queue_.top().at <= now) {
          break;
        }
        if (wake_queue_.empty()) {
          // Nothing can come due until a Block enqueues a deadline (which
          // nudges timer_cv_) or the run ends (StopAll nudges it): park
          // indefinitely instead of polling.
          timer_cv_.Wait(timer_mu_);
        } else {
          timer_cv_.WaitUntil(timer_mu_, std::min(wake_queue_.top().at, wall_end_));
        }
      }
      const Clock::time_point now = Clock::now();
      while (!wake_queue_.empty() && wake_queue_.top().at <= now) {
        due.push_back(wake_queue_.top());
        wake_queue_.pop();
      }
    }
    for (const PendingWakeup& wake : due) {
      if (targeted()) {
        Cpu& home = *cpus_[static_cast<std::size_t>(wake.home)];
        // Fast path: if the home shard's dispatch lock is free RIGHT NOW,
        // apply the wakeup here — the thread becomes runnable (pickable and
        // steal-visible) immediately, instead of after the OS gets around to
        // scheduling the home dispatcher to drain its mailbox, which on an
        // oversubscribed host can take a full scheduling round.  TryLock
        // means a descheduled lock holder can never convoy the timer; the
        // mailbox below stays the contended-case fallback.  Excluded when
        // tracing (per-CPU rings are single-writer: only the home dispatcher
        // may write ring `home`) and under serialize_dispatch (serial_mu_
        // must precede any dispatch mutex; the mailbox path keeps that
        // ordering trivially by taking no scheduler lock at all).
        if (!config_.serialize_dispatch && trace_ == nullptr) {
          PreemptPoke poke;
          bool applied = false;
          {
            auto guard = scheduler_.TryLockDispatch(wake.home);
            if (guard.owns_lock()) {
              applied = true;
              ApplyWakeupLocked(wake.home, wake.tid, wake.at, elapsed, &poke);
            }
          }
          if (applied) {
            if (poke.tid != sched::kInvalidThread) {
              PokePreempt(poke);  // guard released above: Cpu::mu is a leaf
            }
            // Unconditional home kick (wakeup liveness must not depend on the
            // advisory parked-flag scan), then the usual single-kick fan-out
            // for a busy home whose queued thread a parked peer could steal.
            home.park.Kick();
            kicks_.fetch_add(1, std::memory_order_relaxed);
            KickAfterStateChange(wake.home);
            continue;
          }
        }
        // Contended (or excluded) path: route the wakeup to its home CPU —
        // one wait-free push, one targeted kick.  The home dispatcher applies
        // Wakeup under its own dispatch lock (mailbox drain), so this thread
        // touches no scheduler state.
        home.mailbox.Push(WakeMsg{wake.tid, wake.at});
        home.park.Kick();
        kicks_.fetch_add(1, std::memory_order_relaxed);
        {
          common::MutexLock lk(home.mu);  // a busy dispatcher between its
        }                                 // mailbox check and its report wait
        home.cv.NotifyAll();              // must not miss the nudge
        continue;
      }
      // Broadcast mode: the legacy wake path — apply the wakeup here under
      // the exclusive lifecycle lock, then wake every parked CPU.
      sched::ThreadId target_tid = sched::kInvalidThread;
      sched::CpuId target_cpu = sched::kInvalidCpu;
      {
        auto serial = MaybeSerialize();
        auto guard = scheduler_.LockLifecycle();
        if (!scheduler_.Contains(wake.tid)) {
          continue;
        }
        scheduler_.Wakeup(wake.tid);
        wakeups_.fetch_add(1, std::memory_order_relaxed);
        const Clock::time_point now = Clock::now();
        wake_apply_hist_->Record(0, std::max<std::int64_t>(0, DurationNs(now - wake.at)));
        WorkerByTid(wake.tid).wake_pending_ns.store(WallNs(wake.at),
                                                    std::memory_order_relaxed);
        if (trace_) {
          const std::int64_t wake_ns = WallNs(now);
          trace_->PublishNow(wake_ns);
          trace_->RecordLifecycle(obs::TraceEventKind::kWakeup, wake_ns, wake.tid);
        }
        // reschedule_idle(): does the wakeup warrant preempting a running
        // thread?  elapsed[c] approximates each CPU's uncharged run time.
        const Tick now_ticks = ToTicks(now - t0_);
        elapsed.assign(cpus_.size(), 0);
        for (std::size_t c = 0; c < cpus_.size(); ++c) {
          if (scheduler_.RunningOn(static_cast<sched::CpuId>(c)) != sched::kInvalidThread) {
            elapsed[c] = std::max<Tick>(
                0, now_ticks - cpus_[c]->grant_at.load(std::memory_order_relaxed));
          }
        }
        target_cpu = scheduler_.SuggestPreemption(wake.tid, elapsed);
        if (target_cpu != sched::kInvalidCpu) {
          target_tid = scheduler_.RunningOn(target_cpu);
        }
      }
      if (target_tid != sched::kInvalidThread) {
        PokePreempt(PreemptPoke{target_cpu, target_tid});
      }
      // Work conservation: the woken thread must be picked up by an idle CPU
      // immediately, not whenever that CPU happens to produce its own report.
      KickAllParked();
    }
  }
}

Tick Executor::Run(Tick wall_limit) {
  SFS_CHECK(!started_);
  started_ = true;

  t0_ = Clock::now();
  wall_end_ = t0_ + FromTicks(wall_limit);

  cpus_.clear();
  for (int c = 0; c < scheduler_.num_cpus(); ++c) {
    cpus_.push_back(std::make_unique<Cpu>(config_.park_backend));
  }

  // Dispatch routing: tid-indexed flat vector (the scheduler's by_tid_
  // idiom), so the wakeup path costs an indexed load instead of a hash probe.
  worker_by_tid_.clear();
  sched::ThreadId max_tid = -1;
  for (const auto& w : workers_) {
    SFS_CHECK(w->tid >= 0);  // flat routing needs small non-negative task ids
    max_tid = std::max(max_tid, w->tid);
  }
  worker_by_tid_.assign(static_cast<std::size_t>(max_tid + 1), nullptr);
  for (auto& w : workers_) {
    Worker*& slot = worker_by_tid_[static_cast<std::size_t>(w->tid)];
    SFS_CHECK(slot == nullptr);  // duplicate task ids would corrupt dispatch routing
    slot = w.get();
  }

  active_.store(static_cast<int>(workers_.size()));
  if (workers_.empty()) {
    stop_.store(true);
  }

  if (trace_) {
    trace_->set_epoch_ns(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t0_.time_since_epoch())
            .count());
    trace_->PublishNow(0);
  }

  // Register and launch every worker (they start waiting for a grant).
  {
    auto guard = scheduler_.LockLifecycle();
    for (auto& w : workers_) {
      scheduler_.AddThread(w->tid, w->weight);
      if (trace_) {
        trace_->RecordLifecycle(obs::TraceEventKind::kArrival, WallNs(Clock::now()),
                                w->tid);
      }
    }
  }
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { WorkerBody(*worker); });
  }

  std::thread timer([this] { TimerLoop(); });
  std::vector<std::thread> dispatchers;
  dispatchers.reserve(cpus_.size());
  for (std::size_t c = 0; c < cpus_.size(); ++c) {
    dispatchers.emplace_back(
        [this, c] { DispatcherLoop(static_cast<sched::CpuId>(c)); });
  }

  for (auto& d : dispatchers) {
    d.join();
  }
  StopAll();
  timer.join();

  for (const auto& cpu : cpus_) {
    for (const double sample : cpu->preempt_latencies.samples()) {
      preempt_latencies_.Add(sample);
    }
  }

  // Unregister tasks that never finished, then stop their (waiting) threads.
  {
    auto guard = scheduler_.LockLifecycle();
    for (auto& w : workers_) {
      if (scheduler_.Contains(w->tid)) {
        scheduler_.RemoveThread(w->tid);
      }
    }
  }
  for (auto& w : workers_) {
    w->shutdown.store(true);
    {
      common::MutexLock lk(w->mu);
    }
    w->cv.NotifyAll();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
  return ToTicks(Clock::now() - t0_);
}

Tick Executor::CpuTime(sched::ThreadId tid) const {
  for (const auto& w : workers_) {
    if (w->tid == tid) {
      return w->cpu_time;
    }
  }
  SFS_CHECK(false);
  return 0;
}

}  // namespace sfs::runtime

// CPU-affinity helpers for Config::pin_dispatchers: shard-to-core placement
// of dispatcher threads.  Thin, best-effort wrappers — on platforms without
// an affinity syscall pinning reports failure and the runtime simply runs
// unpinned, so no caller needs platform guards.

#ifndef SFS_RUNTIME_AFFINITY_H_
#define SFS_RUNTIME_AFFINITY_H_

namespace sfs::runtime {

// Number of hardware cores visible to this process (>= 1; falls back to 1
// when the platform reports nothing).
int HardwareCores();

// Pins the calling thread to `core` (0-based).  Returns true on success,
// false when unsupported or the syscall fails.
bool PinCurrentThreadToCore(int core);

}  // namespace sfs::runtime

#endif  // SFS_RUNTIME_AFFINITY_H_

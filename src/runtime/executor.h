// sfs::runtime — the user-level scheduling runtime.
//
// Runs genuine std::threads under the control of any sched::Scheduler,
// mirroring the kernel arrangement at user level:
//
//   * at most `num_cpus` workers are granted the CPU at once (the
//     "processors");
//   * one dispatcher thread *per CPU* plays the role of that processor's
//     scheduler invocation: it picks, grants, times the quantum, sets the
//     worker's preempt flag on expiry, charges the scheduler with the
//     *measured* run time, and dispatches the next pick — concurrently with
//     every other CPU's dispatcher, exactly as kernel CPUs run schedule() in
//     parallel (Section 3.1: quanta on different processors are not
//     synchronized);
//   * a timer thread delivers simulated-I/O completions: tasks may return
//     WorkResult::Block(d) to sleep, the scheduler sees Block/Wakeup, and the
//     runtime stays work-conserving;
//   * preemption is cooperative: worker bodies perform a small unit of work
//     per call and re-check the flag, like a kernel preemption point.
//
// Wake and dispatch mechanics (WakeMode::kTargeted, the default):
//
//   * PARKING — each dispatcher owns a common::ParkingSlot (futex on Linux,
//     condvar fallback).  An idle CPU parks on its own slot; a kick wakes
//     exactly one targeted CPU instead of broadcasting through a process-wide
//     condition variable.  The Prepare-token-before-final-look protocol
//     (parking.h) makes a kick that races between an empty pick and the park
//     impossible to lose.
//   * MAILBOX — each dispatcher owns a wait-free MPSC mailbox
//     (common::MpscMailbox).  The timer routes each expired wakeup to the
//     woken thread's *home* CPU — the one whose LockDispatch covers the
//     lifecycle relaxation of the scheduler contract (Scheduler::HomeCpu) —
//     by pushing a message and kicking that slot; it never touches a
//     scheduler lock itself.
//   * DECISION BATCHING — the home dispatcher drains its mailbox (applying
//     Wakeup + SuggestPreemption per message), lands any deferred
//     batch_dispatch charge, and runs PickNext all under ONE LockDispatch
//     hold.  Preempt pokes suggested by the drain are applied after the hold
//     is released (the runtime never holds a dispatch mutex and a Cpu::mu
//     together — see the lock-order note below).
//   * A dispatcher mid-quantum drains its mailbox too: the timer's kick also
//     nudges the CPU's report wait, which exits the wait, drains under
//     LockDispatch, applies pokes, and resumes waiting.  A wakeup whose home
//     CPU is busy therefore still becomes runnable immediately (and may
//     preempt, or be stolen by a kicked peer) rather than languishing until
//     the current slice ends.
//
// Work conservation with single kicks: every wakeup kicks its home CPU
// unconditionally; after a successful pick, the dispatcher passes the baton —
// if runnable work remains beyond what is running, it kicks one more parked
// CPU (round-robin) so queued work fans out one CPU at a time instead of
// waking the whole herd.  A parked dispatcher also re-checks on a bounded
// timeout (Config::idle_recheck, default = quantum) as a belt-and-braces
// backstop, so a missed heuristic kick costs at most one recheck period, not
// liveness.
//
// WakeMode::kBroadcast preserves the previous executor's wake path — the
// timer applies Wakeup under LockLifecycle and every state change kicks ALL
// parked CPUs — as an honest A/B baseline for bench/abl_lock_contention.
//
// Lock order (validated in debug builds): serial_mu_ < dispatch mutexes <
// everything else.  Cpu::mu and Worker::mu are leaf locks; the runtime never
// acquires a scheduler lock while holding them, and never acquires them while
// holding a scheduler lock.  Preempt pokes discovered under LockDispatch are
// therefore parked in a per-dispatcher scratch vector and applied after the
// guard is released.
//
// Scheduler calls follow the sched::Scheduler thread-safety contract
// (scheduler.h).  In targeted mode the runtime uses the contract's sanctioned
// lifecycle relaxation: Block for a thread that just ran on this CPU and
// Wakeup for a thread whose home shard this dispatcher holds are bracketed by
// LockDispatch(home) alone; thread exit keeps the exclusive LockLifecycle.
// Trace discipline follows from that: targeted-mode block/wakeup records go
// to the acting dispatcher's own per-CPU ring (single writer), not the
// lifecycle ring.
//
// This is how the repository demonstrates real proportional sharing on the
// host (examples/realtime_exec, examples/blocking_workload,
// examples/runtime_quickstart) and how Table 1's context-switch latencies get
// a real-code analogue (bench/table1): the dispatch latency measured here
// includes the actual scheduler data-structure work plus any lock contention
// between concurrent dispatchers.
//
// src/exec/executor.h re-exports this class as sfs::exec::Executor for
// existing call sites; new code should link sfs::runtime and use this header.

#ifndef SFS_RUNTIME_EXECUTOR_H_
#define SFS_RUNTIME_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <thread>
#include <vector>

#include "src/common/mpsc_mailbox.h"
#include "src/common/mutex.h"
#include "src/common/parking.h"
#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sched/scheduler.h"

namespace sfs::runtime {

class Executor {
 public:
  // How wakeups reach dispatchers and how many CPUs a state change wakes.
  enum class WakeMode : std::uint8_t {
    // Timer pushes each wakeup to the home CPU's mailbox and kicks that one
    // slot; dispatchers drain the mailbox inside their pick lock hold.
    kTargeted,
    // Legacy wake path: the timer applies Wakeup itself under LockLifecycle
    // and every scheduler-state change kicks every parked CPU (thundering
    // herd).  Kept as the A/B baseline for bench/abl_lock_contention.
    kBroadcast,
  };

  struct Config {
    // Quantum handed to each dispatch.  Shorter than the kernel's 200 ms
    // default so that demo runs interleave visibly.
    Tick quantum = Msec(20);

    // Wake/dispatch mechanics; see the header comment.
    WakeMode wake_mode = WakeMode::kTargeted;

    // Pin each dispatcher thread to core (cpu % hardware cores) so shard c
    // lives on core c — kernel-style shard-to-core placement.  Dispatch and
    // park/kick still work unpinned; pinning removes OS migrations of the
    // dispatcher itself (bench/table1 measures the difference).  Ignored on
    // platforms without an affinity syscall.
    bool pin_dispatchers = false;

    // How long a parked dispatcher sleeps before re-checking for work on its
    // own (the backstop for the single-kick heuristics above).  0 = use
    // `quantum`.
    Tick idle_recheck = 0;

    // Force the parking backend (tests cover both on any host); kAuto picks
    // futex on Linux.
    common::ParkingSlot::Backend park_backend = common::ParkingSlot::Backend::kAuto;

    // Funnel every scheduler operation through one executor-wide mutex, even
    // when the scheduler offers per-CPU dispatch locks.  Emulates the
    // pre-concurrent single-dispatcher executor's serialization (the
    // global-lock side of the abl_lock_contention comparison).
    bool serialize_dispatch = false;

    // Defer each voluntary-continue charge into this CPU's next dispatch-lock
    // hold instead of acquiring the lock twice per slice (once to charge, once
    // to pick).  Safe because the yielded thread stays "running" in scheduler
    // state until the charge lands, so no other dispatcher can pick or steal
    // it in the window: the deferral halves lock traffic on the continue path
    // without changing the scheduling contract.  Block/Done charges are
    // lifecycle transitions and are never deferred.
    bool batch_dispatch = false;

    // Observability sink (wall-nanosecond clock domain; Clock must be
    // kWallNanos and the trace must have at least the scheduler's num_cpus
    // rings).  Each dispatcher records pick/lock-wait spans, grants, run
    // slices, preemptions — and, in targeted mode, the block/wakeup
    // transitions it applies — into its own CPU ring; broadcast-mode
    // block/wakeup events go to the lifecycle ring under the lifecycle lock.
    // nullptr (the default) costs one predicted branch per site and the
    // executor's behaviour is unchanged.
    obs::Trace* trace = nullptr;

    // Metrics registry the latency histograms live in.  When null the
    // executor creates a private registry; pass a shared one so experiments
    // serialize the histograms through the Reporter.  Must be sharded at
    // least num_cpus ways.
    obs::MetricsRegistry* metrics = nullptr;
  };

  // Outcome of one work unit: keep running, finish, or sleep on simulated I/O
  // for `block_for` ticks (the timer thread wakes the task afterwards).
  struct WorkResult {
    enum class Kind { kContinue, kDone, kBlock };

    static WorkResult Continue() { return {Kind::kContinue, 0}; }
    static WorkResult Done() { return {Kind::kDone, 0}; }
    static WorkResult Block(Tick block_for) { return {Kind::kBlock, block_for}; }

    Kind kind = Kind::kContinue;
    Tick block_for = 0;
  };

  // The scheduler decides who runs; its num_cpus() bounds concurrency.
  Executor(sched::Scheduler& scheduler, const Config& config);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Registers a worker before Run().  `work` is invoked repeatedly while the
  // task holds a CPU; each call should do a small unit (tens of microseconds)
  // of work and report through its WorkResult whether to continue, finish, or
  // block.  Task ids should be small and dense: dispatch routing uses a
  // tid-indexed flat vector (the scheduler's by_tid_ idiom).
  void AddTask(sched::ThreadId tid, sched::Weight weight,
               std::function<WorkResult()> work);

  // Convenience overload: `work` returns true to continue, false when done
  // (never blocks).
  void AddTask(sched::ThreadId tid, sched::Weight weight, std::function<bool()> work);

  // Runs until every task finishes or `wall_limit` elapses.  Returns the wall
  // time actually spent (ticks).
  Tick Run(Tick wall_limit);

  // Measured CPU time granted to a task (ticks of wall time while scheduled).
  Tick CpuTime(sched::ThreadId tid) const;

  // Latency from preempt-flag set to the worker actually yielding; a user-level
  // proxy for context-switch cost.  Computed from raw steady_clock time points
  // (flag-set and yield instants are subtracted *before* any truncation to
  // ticks, so the samples carry no quantization bias).
  const common::SampleSet& preempt_latencies() const { return preempt_latencies_; }

  // Latency of one scheduling decision in NANOSECONDS: acquiring the dispatch
  // lock (including any contention with other CPUs' dispatchers) plus the
  // mailbox drain plus PickNext.  Idle picks (nothing runnable) are not
  // sampled.  Accumulated in a bounded per-CPU obs::LogHistogram rather than
  // an unbounded sample vector, so arbitrarily long runs cost constant
  // memory; the snapshot keeps the count/mean/min/max/Percentile shape of the
  // SampleSet it replaced.
  obs::HistogramSnapshot dispatch_latencies() const { return dispatch_hist_->Snapshot(); }

  // Time spent waiting to acquire the dispatch lock alone (nanoseconds); the
  // contention component of dispatch_latencies(), sampled on every acquisition
  // including idle picks.
  obs::HistogramSnapshot lock_wait_latencies() const { return lock_wait_hist_->Snapshot(); }

  // Wall length of each completed run slice (nanoseconds, grant to yield).
  obs::HistogramSnapshot run_interval_lengths() const { return run_hist_->Snapshot(); }

  // Timer-due instant -> Scheduler::Wakeup applied (nanoseconds): the wake
  // path's queueing delay through mailbox + kick + drain (targeted) or the
  // lifecycle lock (broadcast).
  obs::HistogramSnapshot wake_apply_latencies() const {
    return wake_apply_hist_->Snapshot();
  }

  // Timer-due instant -> the woken thread actually granted a CPU
  // (nanoseconds): the end-to-end wake-to-dispatch latency the ISSUE gates
  // on.  One sample per wakeup, recorded at the grant that first runs the
  // thread again.
  obs::HistogramSnapshot wake_to_dispatch_latencies() const {
    return wake_dispatch_hist_->Snapshot();
  }

  // The registry the executor's histograms live in (the Config::metrics one,
  // or the private fallback).
  obs::MetricsRegistry& metrics() { return *metrics_; }

  std::int64_t dispatches() const { return dispatches_.load(std::memory_order_relaxed); }
  std::int64_t wakeups() const { return wakeups_.load(std::memory_order_relaxed); }
  std::int64_t preemptions() const { return preemptions_.load(std::memory_order_relaxed); }
  // Parking-slot kicks issued (targeted: at most one CPU per kick; broadcast:
  // counts every slot of every herd wake — the A/B wake-traffic number).
  std::int64_t kicks() const { return kicks_.load(std::memory_order_relaxed); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Report {
    sched::ThreadId tid = sched::kInvalidThread;
    Tick ran = 0;
    WorkResult::Kind kind = WorkResult::Kind::kContinue;
    Tick block_for = 0;
    bool preempt_observed = false;   // yielded because the flag was set
    Clock::time_point yielded_at{};  // raw instant the work loop exited
  };

  struct Worker {
    sched::ThreadId tid = sched::kInvalidThread;
    sched::Weight weight = 1.0;
    std::function<WorkResult()> work;

    common::Mutex mu;
    common::CondVar cv;
    bool granted SFS_GUARDED_BY(mu) = false;
    sched::CpuId granted_cpu SFS_GUARDED_BY(mu) = sched::kInvalidCpu;
    std::atomic<bool> preempt{false};
    std::atomic<bool> shutdown{false};

    // Wall-ns instant (trace epoch) the pending wakeup came due; -1 when no
    // wakeup is in flight.  Stored where Wakeup is applied, exchanged out at
    // the grant that runs the thread again — the wake_to_dispatch sample.
    std::atomic<std::int64_t> wake_pending_ns{-1};

    std::thread thread;
    Tick cpu_time = 0;  // written under the dispatch/lifecycle lock of the charging CPU
  };

  // A wakeup routed to its home CPU's mailbox (targeted mode).
  struct WakeMsg {
    sched::ThreadId tid = sched::kInvalidThread;
    Clock::time_point due{};  // the timer deadline that expired
  };

  // A preemption suggested by a mailbox drain, applied after the dispatch
  // guard is released (never hold a dispatch mutex and a Cpu::mu together).
  struct PreemptPoke {
    sched::CpuId cpu = sched::kInvalidCpu;
    sched::ThreadId tid = sched::kInvalidThread;
  };

  // Per-processor dispatcher state.  report/cv carry the running worker's
  // yield report back to this CPU's dispatcher; park/mailbox carry wakeups in.
  struct Cpu {
    common::Mutex mu;
    common::CondVar cv;
    std::optional<Report> report SFS_GUARDED_BY(mu);
    sched::ThreadId running_tid SFS_GUARDED_BY(mu) = sched::kInvalidThread;
    bool preempt_sent SFS_GUARDED_BY(mu) = false;
    Clock::time_point preempt_sent_at SFS_GUARDED_BY(mu){};

    // This dispatcher's private parking slot; anyone may Kick() it.
    common::ParkingSlot park;
    // True only while the owning dispatcher is inside ParkUntil; targeted
    // kicks scan these flags to pick ONE sleeping CPU instead of waking all.
    std::atomic<bool> parked{false};
    // Wakeups (and future cross-CPU hints) bound for this CPU; producers are
    // the timer (and potentially peers), consumer is this CPU's dispatcher,
    // which drains under its own LockDispatch hold.
    common::MpscMailbox<WakeMsg> mailbox;

    // Grant instant in ticks since run start, for the elapsed[] vector handed
    // to SuggestPreemption; advisory, hence lock-free.
    std::atomic<Tick> grant_at{0};
    // What this CPU is running, readable without cpu.mu (advisory mirror of
    // running_tid for the elapsed[] estimate; exact values go through mu).
    std::atomic<sched::ThreadId> running_hint{sched::kInvalidThread};

    // This dispatcher's preempt-latency samples; written only by its own
    // thread and merged after the run, so sampling never serializes
    // dispatchers.  (Dispatch latencies go straight to the sharded
    // histograms, which are per-CPU by construction.)
    common::SampleSet preempt_latencies;
    // Config::batch_dispatch: the previous slice's continue charge, parked
    // here between HandleReport and this dispatcher's next LockDispatch hold.
    // Only this CPU's own dispatcher thread reads or writes these.
    sched::ThreadId pending_charge_tid = sched::kInvalidThread;
    Tick pending_charge_ran = 0;

    // Drain scratch (own dispatcher only): pokes collected under the dispatch
    // guard, applied after it; elapsed[] reused across drains.
    std::vector<PreemptPoke> pokes;
    std::vector<Tick> elapsed_scratch;

    explicit Cpu(common::ParkingSlot::Backend backend) : park(backend) {}
  };

  struct PendingWakeup {
    Clock::time_point at;
    sched::ThreadId tid;
    // The CPU that charged the Block — the thread's home while blocked (a
    // blocked thread cannot migrate), recorded here so the timer can route
    // the wakeup without taking any scheduler lock.
    sched::CpuId home;
    bool operator>(const PendingWakeup& other) const { return at > other.at; }
  };

  void WorkerBody(Worker& w);
  void Grant(Worker& w, sched::CpuId cpu);
  void DispatcherLoop(sched::CpuId cpu);
  void TimerLoop();
  void HandleReport(sched::CpuId cpu, const Report& report, bool preempt_sent,
                    Clock::time_point preempt_sent_at);

  // Applies every queued wakeup for `cpu`: Wakeup + wake bookkeeping +
  // SuggestPreemption per message, pokes parked into cpu.pokes.  Caller holds
  // LockDispatch(cpu).  Returns the number of threads woken.
  int DrainMailboxLocked(sched::CpuId cpu);
  // Applies ONE wakeup for a thread homed on `home`; caller holds
  // LockDispatch(home).  Stale wakeups (thread exited, or already runnable
  // from a duplicate delivery) return false untouched.  *poke receives any
  // suggested preemption (cpu == kInvalidCpu when none) for the caller to
  // deliver after releasing the guard.  When trace_ is set the caller must be
  // `home`'s own dispatcher (the wakeup record goes to ring `home`).
  bool ApplyWakeupLocked(sched::CpuId home, sched::ThreadId tid, Clock::time_point due,
                         std::vector<Tick>& elapsed_scratch, PreemptPoke* poke);
  // Applies (and clears) cpu.pokes; caller must NOT hold any scheduler lock.
  void ApplyPreemptPokes(Cpu& cpu);
  // Sets poke.tid's preempt flag if it is still the thread granted on
  // poke.cpu; caller must NOT hold any scheduler lock (Cpu::mu is a leaf).
  void PokePreempt(const PreemptPoke& poke);

  // Targeted: wake one parked CPU (round-robin from `hint`+1), or none if all
  // are busy.  The parked-flag scan is advisory — a miss costs one
  // idle_recheck period, never liveness.
  void KickOneParked(sched::CpuId hint);
  // Kick every slot (broadcast mode, and shutdown).
  void KickAllParked();
  // Mode dispatch for "scheduler state changed, somebody idle may have work".
  void KickAfterStateChange(sched::CpuId hint);

  void StopAll();

  Worker& WorkerByTid(sched::ThreadId tid) {
    return *worker_by_tid_[static_cast<std::size_t>(tid)];
  }

  // Serialization point for Config::serialize_dispatch (no-op lock otherwise).
  // Movable guard: the lock is conditional, so the static analysis cannot
  // track it; the runtime validator covers ordering (serial_mu_ is always
  // acquired before any dispatch mutex, never after).
  common::UniqueMutexLock MaybeSerialize();

  bool targeted() const { return config_.wake_mode == WakeMode::kTargeted; }

  // Wall nanoseconds since the run started (the trace epoch).
  std::int64_t WallNs(Clock::time_point tp) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - t0_).count();
  }

  sched::Scheduler& scheduler_;
  Config config_;
  Tick idle_recheck_ = 0;  // resolved from config (0 -> quantum)

  // Metrics plumbing: external registry or private fallback, plus resolved
  // histogram handles (registration takes a lock; recording must not).
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::LogHistogram* dispatch_hist_ = nullptr;
  obs::LogHistogram* lock_wait_hist_ = nullptr;
  obs::LogHistogram* run_hist_ = nullptr;
  obs::LogHistogram* wake_apply_hist_ = nullptr;
  obs::LogHistogram* wake_dispatch_hist_ = nullptr;
  obs::Trace* trace_ = nullptr;  // == config_.trace

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Worker*> worker_by_tid_;  // tid-indexed flat vector, built in Run
  std::vector<std::unique_ptr<Cpu>> cpus_;

  Clock::time_point t0_;
  Clock::time_point wall_end_;

  std::atomic<bool> stop_{false};
  std::atomic<int> active_{0};
  // CPUs currently between Grant and report pickup; the baton-kick predicate
  // compares it with scheduler_.runnable_count() (which counts running
  // threads too) to estimate queued-but-not-running work.
  std::atomic<int> running_cpus_{0};

  // Sleeping tasks, ordered by wake time; drained by the timer thread, which
  // parks until the earliest pending deadline (indefinitely when empty) and
  // is nudged only when a new deadline becomes the earliest.
  common::Mutex timer_mu_;
  common::CondVar timer_cv_;
  std::priority_queue<PendingWakeup, std::vector<PendingWakeup>, std::greater<>>
      wake_queue_ SFS_GUARDED_BY(timer_mu_);

  common::Mutex serial_mu_;  // Config::serialize_dispatch

  // Merged from the per-CPU sample sets after the dispatchers join.
  common::SampleSet preempt_latencies_;
  std::atomic<std::int64_t> dispatches_{0};
  std::atomic<std::int64_t> wakeups_{0};
  std::atomic<std::int64_t> preemptions_{0};
  std::atomic<std::int64_t> kicks_{0};
  bool started_ = false;
};

}  // namespace sfs::runtime

#endif  // SFS_RUNTIME_EXECUTOR_H_

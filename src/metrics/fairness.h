// Fairness metrics.
//
// Quantifies what the paper's figures show qualitatively: proportional-share
// error relative to GMS (Equations 2-3), Jain's fairness index over normalized
// services, and starvation windows (the Figure 1/4(a) pathology).

#ifndef SFS_METRICS_FAIRNESS_H_
#define SFS_METRICS_FAIRNESS_H_

#include <cstddef>
#include <vector>

#include "src/common/time.h"

namespace sfs::metrics {

// Max pairwise difference of weighted services |A_i/phi_i - A_j/phi_j| — the
// quantity GMS keeps at zero for continuously-runnable threads (Equation 2).
// `services` and `phis` are parallel arrays.
double WeightedServiceSpread(const std::vector<double>& services,
                             const std::vector<double>& phis);

// Jain's fairness index over x_i = A_i / phi_i; 1.0 = perfectly proportional.
double JainIndex(const std::vector<double>& services, const std::vector<double>& phis);

// Largest absolute deviation |A_i - A_i^GMS| (the paper's surplus, Equation 3).
double MaxGmsDeviation(const std::vector<double>& actual, const std::vector<double>& fluid);

// Longest run of consecutive zero increments in a sampled cumulative-service
// series, in ticks (`period` = sampling period).  A starving thread (Figure
// 4(a)) shows a window comparable to the starvation duration; a fairly treated
// thread shows ~0.
Tick LongestStarvation(const std::vector<Tick>& cumulative_series, Tick period);

// Ratio of two slopes over the tail [from, end) of sampled series; used to check
// that e.g. a 1:2 weight assignment yields a ~2.0 service-rate ratio.
double TailSlopeRatio(const std::vector<Tick>& num, const std::vector<Tick>& den,
                      std::size_t from);

}  // namespace sfs::metrics

#endif  // SFS_METRICS_FAIRNESS_H_

#include "src/metrics/response.h"

namespace sfs::metrics {

ResponseStats Summarize(const common::SampleSet& samples) {
  ResponseStats stats;
  stats.samples = samples.count();
  stats.mean_ms = samples.mean();
  stats.p95_ms = samples.Percentile(95.0);
  stats.max_ms = samples.max();
  return stats;
}

}  // namespace sfs::metrics

#include "src/metrics/service_sampler.h"

#include <utility>

#include "src/common/assert.h"

namespace sfs::metrics {

ServiceSampler::ServiceSampler(sim::Engine& engine, Tick period, std::vector<std::string> labels)
    : labels_(std::move(labels)) {
  for (const auto& label : labels_) {
    series_[label] = {};
  }
  engine.AddPeriodicHook(period, [this](sim::Engine& e) { Sample(e); });
}

void ServiceSampler::Sample(sim::Engine& engine) {
  times_.push_back(engine.now());
  std::map<std::string, Tick, std::less<>> sums;
  for (const auto& label : labels_) {
    sums[label] = 0;
  }
  engine.ForEachTask([&](const sim::Task& task) {
    auto it = sums.find(task.label());
    if (it != sums.end()) {
      it->second += engine.ServiceIncludingRunning(task.tid());
    }
  });
  for (const auto& label : labels_) {
    series_[label].push_back(sums[label]);
  }
}

const std::vector<Tick>& ServiceSampler::Series(std::string_view label) const {
  auto it = series_.find(label);
  SFS_CHECK(it != series_.end());
  return it->second;
}

std::vector<Tick> ServiceSampler::Increments(std::string_view label) const {
  const auto& s = Series(label);
  std::vector<Tick> inc;
  inc.reserve(s.size());
  Tick prev = 0;
  for (Tick v : s) {
    inc.push_back(v - prev);
    prev = v;
  }
  return inc;
}

}  // namespace sfs::metrics

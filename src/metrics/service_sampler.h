// Periodic cumulative-service sampler.
//
// Records, at a fixed simulated period, the total CPU service received by each
// *label* (summed across all tasks carrying the label, including exited ones).
// This is exactly what Figures 4 and 5 plot: cumulative iteration counts per
// task group over time.  Labels aggregate naturally — the 20 background threads
// of Figure 5 share one label, as does the chain of short-lived T_short tasks.

#ifndef SFS_METRICS_SERVICE_SAMPLER_H_
#define SFS_METRICS_SERVICE_SAMPLER_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/sim/engine.h"

namespace sfs::metrics {

class ServiceSampler {
 public:
  // Starts sampling `engine` every `period`; only tasks whose label is in
  // `labels` are tracked.  Must outlive the engine run.
  ServiceSampler(sim::Engine& engine, Tick period, std::vector<std::string> labels);

  const std::vector<Tick>& times() const { return times_; }

  // Cumulative service (ticks) of `label` at each sample point.
  const std::vector<Tick>& Series(std::string_view label) const;

  // Convenience: service increments between consecutive samples (the slope that
  // makes starvation visible as a run of zeros).
  std::vector<Tick> Increments(std::string_view label) const;

  const std::vector<std::string>& labels() const { return labels_; }

 private:
  void Sample(sim::Engine& engine);

  std::vector<std::string> labels_;
  std::vector<Tick> times_;
  std::map<std::string, std::vector<Tick>, std::less<>> series_;
};

}  // namespace sfs::metrics

#endif  // SFS_METRICS_SERVICE_SAMPLER_H_

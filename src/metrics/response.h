// Response-time statistics for interactive workloads (Figure 6(c)).

#ifndef SFS_METRICS_RESPONSE_H_
#define SFS_METRICS_RESPONSE_H_

#include <cstddef>

#include "src/common/stats.h"

namespace sfs::metrics {

// Summary of a set of response-time samples (milliseconds).
struct ResponseStats {
  double mean_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
  std::size_t samples = 0;
};

ResponseStats Summarize(const common::SampleSet& samples);

}  // namespace sfs::metrics

#endif  // SFS_METRICS_RESPONSE_H_

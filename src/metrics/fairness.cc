#include "src/metrics/fairness.h"

#include <algorithm>
#include <cmath>

#include "src/common/assert.h"

namespace sfs::metrics {

double WeightedServiceSpread(const std::vector<double>& services,
                             const std::vector<double>& phis) {
  SFS_CHECK(services.size() == phis.size());
  if (services.empty()) {
    return 0.0;
  }
  double lo = services[0] / phis[0];
  double hi = lo;
  for (std::size_t i = 1; i < services.size(); ++i) {
    SFS_CHECK(phis[i] > 0);
    const double x = services[i] / phis[i];
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  return hi - lo;
}

double JainIndex(const std::vector<double>& services, const std::vector<double>& phis) {
  SFS_CHECK(services.size() == phis.size());
  if (services.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < services.size(); ++i) {
    SFS_CHECK(phis[i] > 0);
    const double x = services[i] / phis[i];
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) {
    return 1.0;
  }
  const auto n = static_cast<double>(services.size());
  return (sum * sum) / (n * sum_sq);
}

double MaxGmsDeviation(const std::vector<double>& actual, const std::vector<double>& fluid) {
  SFS_CHECK(actual.size() == fluid.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    worst = std::max(worst, std::abs(actual[i] - fluid[i]));
  }
  return worst;
}

Tick LongestStarvation(const std::vector<Tick>& cumulative_series, Tick period) {
  SFS_CHECK(period > 0);
  Tick longest = 0;
  Tick current = 0;
  Tick prev = 0;
  bool first = true;
  for (Tick v : cumulative_series) {
    if (first) {
      first = false;
      prev = v;
      continue;
    }
    if (v == prev) {
      current += period;
      longest = std::max(longest, current);
    } else {
      current = 0;
    }
    prev = v;
  }
  return longest;
}

double TailSlopeRatio(const std::vector<Tick>& num, const std::vector<Tick>& den,
                      std::size_t from) {
  SFS_CHECK(num.size() == den.size());
  SFS_CHECK(from < num.size());
  const double dn = static_cast<double>(num.back() - num[from]);
  const double dd = static_cast<double>(den.back() - den[from]);
  SFS_CHECK(dd != 0.0);
  return dn / dd;
}

}  // namespace sfs::metrics

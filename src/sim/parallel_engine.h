// Parallel sharded discrete-event simulation engine.
//
// sim::Engine is single-threaded: one event loop drives every simulated
// processor, so a 1M-thread x 1024-CPU simulation is bounded by one host
// core.  ParallelEngine shards that loop along the same per-CPU boundaries
// as sched::ShardedScheduler: each simulation *worker* owns a contiguous
// block of simulated CPUs and runs a private event loop over them — its own
// timing wheel, its own clock, its own counters — synchronizing with its
// peers only at conservative epoch barriers (DESIGN.md §10).
//
// Synchronization model (conservative, epoch-barrier PDES):
//
//   * Simulated time is cut into epochs of `epoch` ticks.  Within an epoch a
//     worker processes its own events freely; cross-worker interaction goes
//     through the scheduler's own locks (per-shard dispatch mutexes for
//     steal / rebalance, the full lifecycle lock for arrivals and exits), so
//     it is always *safe*, merely not time-ordered across workers.
//   * At each epoch boundary every worker parks on a barrier; the last
//     arriver runs Scheduler::OnEpochBoundary(now) single-threaded (the
//     sharded layer republishes shard-local virtual times there — the
//     cross-shard virtual-time coupling point), then all workers enter the
//     next epoch together.
//   * A wakeup whose home shard belongs to another worker is mailed through
//     a per-(target, source) MPSC mailbox (common::MpscMailbox) and drained
//     at the target's next epoch start, in source order, with the wakeup
//     time clamped forward to the epoch start.  This only arises when the
//     scheduler's placement diverges from the engine's arrival routing
//     (e.g. a task that arrives asleep without a home hint); partitioned
//     workloads with home hints never mail.
//   * At each epoch start a worker re-dispatches its idle CPUs ("idle
//     kick"), bounding how long queued or stealable work can sit unserved
//     because the event that made it runnable belonged to another worker.
//
// Determinism contract (DESIGN.md §10):
//
//   * workers == 1 runs inline on the calling thread — no threads, no
//     barriers, no mail, no kicks — and reproduces sim::Engine's schedule,
//     run-interval stream and lifecycle stream byte-identically for every
//     policy.  The serial engine stays on as the determinism oracle.
//   * workers > 1 with a *partitioned* sharded policy (stealing off,
//     rebalance off, coupling 0, every task carrying a home hint) evolves
//     each worker's shard group exactly as the serial engine does: an idle
//     CPU's shard holds no queued runnable work, so cross-group dispatch
//     attempts are no-ops and per-group event streams are byte-identical to
//     the oracle's group subsequences — at any worker count, on reruns.
//   * workers > 1 with stealing/rebalancing policies is *boundedly
//     divergent*: every schedule it produces is one the serial engine could
//     have produced under a different (still legal, unsynchronized-quanta)
//     event interleaving, with cross-worker placement delayed by at most one
//     epoch.  Fairness deviations stay GMS-bounded; exact schedules differ
//     run to run.  Conservation invariants (arrivals == departures + live,
//     every grant charged) hold in every mode.
//
// Concurrency restrictions at workers > 1 (checked where practical):
//   * AddTaskAt / KillTask / ReserveTasks only while quiescent (outside
//     RunUntil).  Periodic hooks require workers == 1.
//   * Exit hooks run on simulation workers and must not touch the engine.
//   * Hooks receive the worker id; per-worker accumulation needs no locks.

#ifndef SFS_SIM_PARALLEL_ENGINE_H_
#define SFS_SIM_PARALLEL_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/mpsc_mailbox.h"
#include "src/common/mutex.h"
#include "src/common/slot_arena.h"
#include "src/common/time.h"
#include "src/common/timing_wheel.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sched/scheduler.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace sfs::sched {
class ShardedScheduler;
}  // namespace sfs::sched

namespace sfs::sim {

struct ParallelEngineConfig {
  // Simulation worker threads.  Each owns num_cpus/workers simulated CPUs
  // (must satisfy 1 <= workers <= num_cpus).  1 == the serial oracle path.
  int workers = 1;

  // Epoch length in ticks (workers > 1 only): the conservative
  // synchronization horizon.  Longer epochs amortize barriers; shorter
  // epochs tighten cross-worker placement latency and virtual-time skew.
  Tick epoch = Msec(10);

  // Cost model knobs, exactly as EngineConfig (engine.h documents them).
  Tick context_switch_cost = 0;
  Tick cache_restore_per_kb = 0;
  bool preempt_on_arrival = true;

  // Observability.  At workers > 1 the trace needs per-worker lifecycle
  // rings (added automatically) and `metrics` must have been built with at
  // least `workers` shards (checked); per-CPU rings stay single-writer
  // because ring c is only ever written by the worker owning CPU c.
  obs::Trace* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class ParallelEngine {
 public:
  ParallelEngine(sched::Scheduler& scheduler, ParallelEngineConfig config = {});
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  // --- workload setup ---------------------------------------------------------

  // Schedules `task` to arrive at absolute time `at` >= now.  The arrival is
  // routed to the worker owning the task's home_cpu() hint; hintless tasks
  // round-robin across workers.  workers > 1: quiescent only (the serial
  // path also accepts it from exit hooks, exactly like sim::Engine).
  void AddTaskAt(Tick at, std::unique_ptr<Task> task);

  // Pre-sizes the task arena, tid index and per-worker event pools; a pure
  // allocation hint, never a requirement.
  void ReserveTasks(std::size_t task_count);

  // Periodic hooks would race every worker's clock; serial path only.
  void AddPeriodicHook(Tick period, std::function<void(ParallelEngine&)> fn);

  // Exit hook; at workers > 1 it runs on whichever worker retires the task
  // and must be thread-safe and engine-read-only.
  void SetExitHook(std::function<void(ParallelEngine&, Task&)> fn);

  // Lifecycle / run-interval observers, as sim::Engine but with the worker
  // id prepended so callers keep per-worker accumulators (fingerprints).
  void SetSchedEventHook(std::function<void(int, SchedEvent, const Task&, Tick)> fn);
  void SetRunIntervalHook(
      std::function<void(int, Tick, Tick, sched::CpuId, sched::ThreadId)> fn);

  // --- execution --------------------------------------------------------------

  // Runs the simulation until `until` inclusive.  workers == 1: inline,
  // byte-identical to sim::Engine.  workers > 1: spawns the workers, runs
  // the epoch loop, joins them before returning.
  void RunUntil(Tick until);

  // Terminates a task immediately (sim::Engine::KillTask semantics).
  // workers > 1: quiescent only; serial path: also from hooks mid-run.
  void KillTask(sched::ThreadId tid);

  // --- introspection (quiescent, or serial path) ------------------------------

  Tick now() const { return now_; }
  int workers() const { return config_.workers; }
  sched::Scheduler& scheduler() { return scheduler_; }

  const Task& task(sched::ThreadId tid) const;
  Task& task(sched::ThreadId tid);
  bool HasTask(sched::ThreadId tid) const;
  Tick Service(sched::ThreadId tid) const { return task(tid).service(); }
  Tick ServiceIncludingRunning(sched::ThreadId tid) const;

  template <typename Fn>
  void ForEachTask(Fn&& fn) const {
    tasks_.ForEach(fn);
  }

  // Aggregates over all workers.
  std::int64_t context_switches() const { return SumCounter(&Worker::context_switches); }
  std::int64_t dispatches() const { return SumCounter(&Worker::dispatches); }
  std::int64_t preemptions() const { return SumCounter(&Worker::preemptions); }
  std::int64_t migrations() const { return SumCounter(&Worker::migrations); }
  std::int64_t events_processed() const { return SumCounter(&Worker::events_processed); }
  // Scheduler-side steals during this engine's lifetime (steals happen only
  // inside PickNext, so the scheduler's counter is exact; per-worker deltas
  // would double-count under concurrency).
  std::int64_t steals() const { return scheduler_.steals() - steals_at_ctor_; }
  // Wakeups that crossed a worker boundary through a mailbox.
  std::int64_t mailed_wakeups() const { return SumCounter(&Worker::mailed_wakeups); }
  // Epoch barriers crossed (0 on the serial path).
  std::int64_t epochs() const { return epochs_; }
  Tick total_context_switch_cost() const;
  Tick idle_time() const;

 private:
  using TaskSlot = common::SlotArena<Task>::SlotId;

  enum class EventKind : std::uint8_t { kArrival, kWakeup, kCpuTimer, kPeriodic };

  // Field-compatible with sim::Engine's event so the wheels are exercised
  // identically.  `stamp` carries the timer generation for kCpuTimer and the
  // home shard (the dispatch-mutex key for the wakeup-path lock relaxation,
  // scheduler.h) for kWakeup.
  struct Event {
    Tick time = 0;
    std::uint64_t seq = 0;
    EventKind kind = EventKind::kArrival;
    std::int32_t a = 0;
    std::uint64_t stamp = 0;
  };

  struct Cpu {
    sched::ThreadId running = sched::kInvalidThread;
    TaskSlot running_slot = 0;
    sched::ThreadId last_thread = sched::kInvalidThread;
    Tick dispatch_time = 0;
    Tick switch_cost = 0;
    Tick run_start = 0;
    Tick quantum_end = 0;
    Tick burst_end = 0;
    std::uint64_t timer_stamp = 0;
    Tick idle_since = 0;
    Tick idle_accum = 0;
  };

  struct PeriodicHook {
    Tick period = 0;
    std::function<void(ParallelEngine&)> fn;
  };

  // A wakeup crossing worker boundaries: deliver task `slot` at `time`,
  // locking shard `home` (clamped forward to the receiving epoch's start).
  struct Mail {
    TaskSlot slot = 0;
    Tick time = 0;
    sched::CpuId home = sched::kInvalidCpu;
  };

  // Per-worker simulation state.  Only the owning worker thread touches any
  // of it during a parallel run (mailboxes aside, which are MPSC by design).
  struct Worker {
    // Mailboxes are sized up front: MpscMailbox is self-referential (its stub
    // node anchors the list), so the vector may never relocate one.
    explicit Worker(int nworkers) : mail(static_cast<std::size_t>(nworkers)) {}

    int id = 0;
    sched::CpuId cpu_begin = 0;  // owned simulated CPUs: [cpu_begin, cpu_end)
    sched::CpuId cpu_end = 0;
    Tick now = 0;
    std::uint64_t next_seq = 0;
    common::TimingWheel<Event> wheel;
    // mail[source]: wakeups sent to this worker by worker `source`.
    std::vector<common::MpscMailbox<Mail>> mail;
    std::vector<Tick> preempt_elapsed;  // reused SuggestPreemption scratch

    std::int64_t context_switches = 0;
    std::int64_t dispatches = 0;
    std::int64_t preemptions = 0;
    std::int64_t migrations = 0;
    std::int64_t events_processed = 0;
    std::int64_t mailed_wakeups = 0;
    Tick total_ctx_cost = 0;
  };

  // Mutex/condvar epoch barrier; the completion function runs exclusively
  // (every other worker parked) — the single-threaded window OnEpochBoundary
  // is specified against.
  class EpochBarrier {
   public:
    explicit EpochBarrier(int count) : count_(count) {}
    template <typename Fn>
    void ArriveAndWait(Fn&& completion) {
      common::MutexLock lock(mu_);
      const std::uint64_t generation = generation_;
      if (++waiting_ == count_) {
        completion();
        waiting_ = 0;
        ++generation_;
        cv_.NotifyAll();
        return;
      }
      while (generation_ == generation) {
        cv_.Wait(mu_);
      }
    }

   private:
    common::Mutex mu_;
    common::CondVar cv_;
    int count_;
    int waiting_ SFS_GUARDED_BY(mu_) = 0;
    std::uint64_t generation_ SFS_GUARDED_BY(mu_) = 0;
  };

  int OwnerOf(sched::CpuId cpu) const {
    return owner_of_cpu_[static_cast<std::size_t>(cpu)];
  }

  TaskSlot SlotFor(sched::ThreadId tid) const;

  // Empty (no-op) guards on the serial path: workers == 1 must not pay for —
  // or be reordered by — locks nobody contends.
  sched::Scheduler::DispatchGuard LockDispatchIf(sched::CpuId cpu) {
    return locked_ ? scheduler_.LockDispatch(cpu) : sched::Scheduler::DispatchGuard();
  }
  sched::Scheduler::LifecycleGuard LockLifecycleIf() {
    return locked_ ? scheduler_.LockLifecycle() : sched::Scheduler::LifecycleGuard();
  }

  void Push(Worker& w, Tick time, EventKind kind, std::int32_t a,
            std::uint64_t stamp = 0);
  // Routes a wakeup for `slot` at `time` to the worker owning shard `home`:
  // the local wheel when that is `w`, the mailbox pair otherwise.
  void PushWakeup(Worker& w, TaskSlot slot, Tick time, sched::CpuId home);

  void RunWorker(Worker& w, Tick start, Tick until, EpochBarrier& barrier);
  void RunLocal(Worker& w, Tick bound);
  void DrainMail(Worker& w, Tick epoch_start);
  void IdleKick(Worker& w);

  void DispatchEvent(Worker& w, const Event& ev);
  void HandleArrival(Worker& w, TaskSlot slot);
  void HandleWakeup(Worker& w, TaskSlot slot, sched::CpuId home);
  void HandleCpuTimer(Worker& w, sched::CpuId cpu_id, std::uint64_t stamp);
  void HandlePeriodic(Worker& w, std::size_t idx);

  // `home` is the woken/arrived thread's home shard — the dispatch-mutex key
  // for SuggestPreemption under the lock relaxation (scheduler.h).
  void PlaceRunnable(Worker& w, sched::ThreadId tid, sched::CpuId home, bool may_preempt);
  void StopRunning(Worker& w, sched::CpuId cpu_id);
  void Dispatch(Worker& w, sched::CpuId cpu_id);

  void NotifySchedEvent(Worker& w, SchedEvent event, const Task& task) {
    if (sched_event_hook_) {
      sched_event_hook_(w.id, event, task, w.now);
    }
    if (trace_) [[unlikely]] {
      if (locked_) {
        trace_->RecordLifecycleOnWorker(w.id, static_cast<obs::TraceEventKind>(event),
                                        w.now, task.tid());
      } else {
        trace_->RecordLifecycle(static_cast<obs::TraceEventKind>(event), w.now,
                                task.tid());
      }
    }
  }

  std::int64_t SumCounter(std::int64_t Worker::* member) const {
    std::int64_t total = 0;
    for (const auto& w : workers_) {
      total += (*w).*member;
    }
    return total;
  }

  sched::Scheduler& scheduler_;
  // Non-null when the scheduler is sharded: home shards are then meaningful
  // (ShardOf routes cross-worker wakeups; flat schedulers serialize on one
  // dispatch mutex and keep every wakeup local).
  sched::ShardedScheduler* sharded_ = nullptr;
  ParallelEngineConfig config_;
  obs::Trace* trace_;
  obs::LogHistogram* quantum_hist_ = nullptr;
  obs::LogHistogram* run_hist_ = nullptr;
  const bool locked_;  // workers > 1: bracket scheduler calls in its locks
  Tick now_ = 0;       // quiescent clock; the live clock is per-worker
  bool parallel_running_ = false;
  std::int64_t steals_at_ctor_ = 0;
  std::int64_t epochs_ = 0;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<int> owner_of_cpu_;
  common::SlotArena<Task> tasks_;
  std::vector<std::int32_t> tid_to_slot_;
  std::vector<Cpu> cpus_;
  std::vector<PeriodicHook> periodic_hooks_;
  std::uint64_t arrival_rr_ = 0;  // hintless-arrival round-robin cursor

  std::function<void(ParallelEngine&, Task&)> exit_hook_;
  std::function<void(int, SchedEvent, const Task&, Tick)> sched_event_hook_;
  std::function<void(int, Tick, Tick, sched::CpuId, sched::ThreadId)> run_interval_hook_;
};

}  // namespace sfs::sim

#endif  // SFS_SIM_PARALLEL_ENGINE_H_

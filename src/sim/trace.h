// Schedule trace recording and analysis.
//
// Records every completed run interval (thread, CPU, start, length, why it
// ended) and derives the scheduling-dynamics statistics the paper discusses
// qualitatively — most importantly *spurts* (Section 4.3: "SFQ schedules
// threads in 'spurts' — threads with larger weights run continuously for some
// number of quanta, then threads with smaller weights run for a few quanta and
// the cycle repeats"), which are the mechanism behind the Figure 5
// misallocation.

#ifndef SFS_SIM_TRACE_H_
#define SFS_SIM_TRACE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/time.h"
#include "src/sched/types.h"
#include "src/sim/engine.h"

namespace sfs::sim {

struct RunInterval {
  Tick start = 0;
  Tick length = 0;
  sched::CpuId cpu = sched::kInvalidCpu;
  sched::ThreadId tid = sched::kInvalidThread;
};

// Attach to an engine before running; keeps every run interval for analysis.
class TraceRecorder {
 public:
  explicit TraceRecorder(Engine& engine);

  const std::vector<RunInterval>& intervals() const { return intervals_; }

  // Longest contiguous single-thread occupancy of one CPU, in ticks: the
  // "spurt" length.  Consecutive intervals of the same thread on the same CPU
  // with no gap are merged (a thread re-picked after quantum expiry continues
  // its spurt).
  Tick MaxSpurt(sched::ThreadId tid) const;

  // Max spurt over all threads whose id is in [lo, hi] (aggregate over a group).
  Tick MaxSpurtInRange(sched::ThreadId lo, sched::ThreadId hi) const;

  // Number of distinct spurts of a thread.
  std::int64_t SpurtCount(sched::ThreadId tid) const;

 private:
  struct SpurtState {
    Tick current = 0;
    Tick max = 0;
    std::int64_t count = 0;
    Tick last_end = -1;
    sched::CpuId last_cpu = sched::kInvalidCpu;
  };

  void Record(Tick start, Tick length, sched::CpuId cpu, sched::ThreadId tid);

  std::vector<RunInterval> intervals_;
  std::map<sched::ThreadId, SpurtState> spurts_;
};

}  // namespace sfs::sim

#endif  // SFS_SIM_TRACE_H_

// ASCII Gantt rendering of schedule traces.
//
// Turns a TraceRecorder's run intervals into a per-thread occupancy chart, the
// quickest way to *see* the dynamics the paper describes (SFQ's spurts, SFS's
// fine interleaving, starvation windows).  Used by examples/schedule_viz.

#ifndef SFS_SIM_GANTT_H_
#define SFS_SIM_GANTT_H_

#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/sim/trace.h"

namespace sfs::sim {

struct GanttOptions {
  Tick from = 0;
  Tick to = 0;        // 0 = end of trace
  int width = 100;    // characters per row
  // Threads to render, in row order, with display labels.
  std::vector<std::pair<sched::ThreadId, std::string>> rows;
};

// Renders one row per requested thread; each column covers (to-from)/width of
// time and is filled with a block glyph scaled by the thread's occupancy of
// that slice (' ', '.', ':', '#' for 0, <25%, <75%, >=75% of one CPU).
std::string RenderGantt(const TraceRecorder& trace, const GanttOptions& options);

}  // namespace sfs::sim

#endif  // SFS_SIM_GANTT_H_

#include "src/sim/engine.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/common/assert.h"

namespace sfs::sim {

static_assert(static_cast<int>(SchedEvent::kArrival) ==
                      static_cast<int>(obs::TraceEventKind::kArrival) &&
                  static_cast<int>(SchedEvent::kDeparture) ==
                      static_cast<int>(obs::TraceEventKind::kDeparture) &&
                  static_cast<int>(SchedEvent::kBlock) ==
                      static_cast<int>(obs::TraceEventKind::kBlock) &&
                  static_cast<int>(SchedEvent::kWakeup) ==
                      static_cast<int>(obs::TraceEventKind::kWakeup),
              "NotifySchedEvent casts SchedEvent to TraceEventKind");

Engine::Engine(sched::Scheduler& scheduler, EngineConfig config)
    : scheduler_(scheduler),
      config_(config),
      trace_(config.trace),
      use_wheel_(config.event_queue == EventQueueKind::kTimingWheel) {
  cpus_.resize(static_cast<std::size_t>(scheduler.num_cpus()));
  for (auto& cpu : cpus_) {
    cpu.idle_since = 0;
  }
  preempt_elapsed_.reserve(cpus_.size());
  if (trace_ != nullptr) {
    SFS_CHECK(trace_->num_cpus() >= scheduler.num_cpus());
    scheduler_.SetTrace(trace_);
  }
  if (config.metrics != nullptr) {
    quantum_hist_ = &config.metrics->GetHistogram("sim/quantum_ticks");
    run_hist_ = &config.metrics->GetHistogram("sim/run_interval_ticks");
  }
}

Engine::~Engine() = default;

void Engine::AddTaskAt(Tick at, std::unique_ptr<Task> task) {
  SFS_CHECK(at >= now_);
  SFS_CHECK(task != nullptr);
  const sched::ThreadId tid = task->tid();
  SFS_CHECK(tid >= 0);
  if (static_cast<std::size_t>(tid) >= tid_to_slot_.size()) {
    // Auto-grow with geometric capacity: a monotone stream of fresh tids
    // (exit-hook churn) would otherwise re-resize to exactly tid+1 each time
    // and degrade to quadratic copying.  ReserveTasks remains a pure
    // pre-touch optimization, never a requirement.
    tid_to_slot_.reserve(std::bit_ceil(static_cast<std::size_t>(tid) + 1));
    tid_to_slot_.resize(static_cast<std::size_t>(tid) + 1, -1);
  }
  SFS_CHECK(tid_to_slot_[static_cast<std::size_t>(tid)] < 0);  // duplicate tid
  const TaskSlot slot = tasks_.Emplace(std::move(*task));
  tasks_[slot].slot_ = slot;
  tid_to_slot_[static_cast<std::size_t>(tid)] = static_cast<std::int32_t>(slot);
  if (trace_ && !tasks_[slot].label().empty()) {
    trace_->SetThreadName(tid, tasks_[slot].label() + " T" + std::to_string(tid));
  }
  Push(at, EventKind::kArrival, static_cast<std::int32_t>(slot));
}

void Engine::ReserveTasks(std::size_t task_count) {
  tasks_.Reserve(task_count);
  tid_to_slot_.reserve(task_count + 1);
  // Every blocked task holds one pending wakeup and every CPU one timer, plus
  // slack for superseded timers awaiting their pop.
  const std::size_t pending = task_count + 2 * cpus_.size() + 16;
  if (use_wheel_) {
    wheel_.Reserve(pending);
  } else if (events_.empty()) {
    std::vector<Event> storage;
    storage.reserve(pending);
    events_ = decltype(events_)(std::greater<>(), std::move(storage));
  }
}

void Engine::AddPeriodicHook(Tick period, std::function<void(Engine&)> fn) {
  SFS_CHECK(period > 0);
  periodic_hooks_.push_back({period, std::move(fn)});
  Push(now_ + period, EventKind::kPeriodic,
       static_cast<std::int32_t>(periodic_hooks_.size() - 1));
}

void Engine::SetExitHook(std::function<void(Engine&, Task&)> fn) { exit_hook_ = std::move(fn); }

void Engine::SetSchedEventHook(std::function<void(SchedEvent, const Task&, Tick)> fn) {
  sched_event_hook_ = std::move(fn);
}

void Engine::SetRunIntervalHook(
    std::function<void(Tick, Tick, sched::CpuId, sched::ThreadId)> fn) {
  run_interval_hook_ = std::move(fn);
}

void Engine::RunUntil(Tick until) {
  SFS_CHECK(until >= now_);
  if (use_wheel_) {
    Tick t = 0;
    if (config_.batch_drain) {
      // Same-tick batch: one NextTime() per distinct tick, then drain the whole
      // slot FIFO (including handler re-pushes at this tick) in one pass.
      while (wheel_.NextTime(until, &t)) {
        SFS_DCHECK(t >= now_);
        now_ = t;
        wheel_.DrainCurrent([this](const Event& ev) { DispatchEvent(ev); });
      }
    } else {
      while (wheel_.NextTime(until, &t)) {
        SFS_DCHECK(t >= now_);
        now_ = t;
        DispatchEvent(wheel_.PopFront());
      }
    }
  } else {
    while (!events_.empty() && events_.top().time <= until) {
      const Event ev = events_.top();
      events_.pop();
      SFS_DCHECK(ev.time >= now_);
      now_ = ev.time;
      DispatchEvent(ev);
    }
  }
  now_ = until;
}

void Engine::DispatchEvent(const Event& ev) {
  ++events_processed_;
  if (trace_) [[unlikely]] {
    // Clockless scheduler contexts (steal/rebalance/readjust) stamp their
    // records with this hint; exact in the single-threaded engine.
    trace_->PublishNow(now_);
  }
  switch (ev.kind) {
    case EventKind::kArrival:
      HandleArrival(static_cast<TaskSlot>(ev.a));
      break;
    case EventKind::kWakeup:
      HandleWakeup(static_cast<TaskSlot>(ev.a));
      break;
    case EventKind::kCpuTimer:
      HandleCpuTimer(ev.a, ev.stamp);
      break;
    case EventKind::kPeriodic:
      HandlePeriodic(static_cast<std::size_t>(ev.a));
      break;
  }
}

void Engine::KillTask(sched::ThreadId tid) {
  Task& t = task(tid);
  SFS_CHECK(t.state_ != Task::State::kExited);
  sched::CpuId freed = sched::kInvalidCpu;
  switch (t.state_) {
    case Task::State::kRunning: {
      for (sched::CpuId cpu_id = 0; cpu_id < scheduler_.num_cpus(); ++cpu_id) {
        if (cpus_[static_cast<std::size_t>(cpu_id)].running == tid) {
          StopRunning(cpu_id);  // charges; may block/exit via the behaviour
          freed = cpu_id;
          break;
        }
      }
      break;
    }
    case Task::State::kNew:
      // Not yet arrived: mark exited; the pending arrival event is then ignored.
      t.state_ = Task::State::kExited;
      return;
    default:
      break;
  }
  if (t.state_ == Task::State::kBlocked) {
    // Wake-then-remove keeps the scheduler protocol simple; the pending wakeup
    // event becomes stale and is ignored via the exited state.
    scheduler_.Wakeup(tid);
    NotifySchedEvent(SchedEvent::kWakeup, t);
    t.state_ = Task::State::kRunnable;
  }
  if (t.state_ != Task::State::kExited) {
    scheduler_.RemoveThread(tid);
    NotifySchedEvent(SchedEvent::kDeparture, t);
    t.state_ = Task::State::kExited;
    if (exit_hook_) {
      exit_hook_(*this, t);
    }
  }
  if (freed != sched::kInvalidCpu) {
    Dispatch(freed);
  }
}

Engine::TaskSlot Engine::SlotFor(sched::ThreadId tid) const {
  SFS_CHECK(tid >= 0 && static_cast<std::size_t>(tid) < tid_to_slot_.size());
  const std::int32_t slot = tid_to_slot_[static_cast<std::size_t>(tid)];
  SFS_CHECK(slot >= 0);
  return static_cast<TaskSlot>(slot);
}

const Task& Engine::task(sched::ThreadId tid) const { return tasks_[SlotFor(tid)]; }

Task& Engine::task(sched::ThreadId tid) { return tasks_[SlotFor(tid)]; }

bool Engine::HasTask(sched::ThreadId tid) const {
  return tid >= 0 && static_cast<std::size_t>(tid) < tid_to_slot_.size() &&
         tid_to_slot_[static_cast<std::size_t>(tid)] >= 0;
}

Tick Engine::ServiceIncludingRunning(sched::ThreadId tid) const {
  const Task& t = task(tid);
  Tick service = t.service();
  if (t.state() == Task::State::kRunning) {
    for (const auto& cpu : cpus_) {
      if (cpu.running == tid) {
        service += std::max<Tick>(0, now_ - cpu.run_start);
        break;
      }
    }
  }
  return service;
}

Tick Engine::total_context_switch_cost() const {
  Tick total = total_ctx_cost_;
  for (const auto& cpu : cpus_) {
    if (cpu.running != sched::kInvalidThread) {
      total += std::min(cpu.switch_cost, std::max<Tick>(0, now_ - cpu.dispatch_time));
    }
  }
  return total;
}

Tick Engine::idle_time() const {
  Tick total = 0;
  for (const auto& cpu : cpus_) {
    total += cpu.idle_accum;
    if (cpu.running == sched::kInvalidThread && cpu.idle_since >= 0) {
      total += now_ - cpu.idle_since;
    }
  }
  return total;
}

void Engine::Push(Tick time, EventKind kind, std::int32_t a, std::uint64_t stamp) {
  SFS_DCHECK(time >= now_);
  if (use_wheel_) {
    // The wheel's per-slot FIFO realizes the (time, seq) order by construction;
    // seq is still stamped so the two backends stay field-identical.
    wheel_.Push(time, Event{time, next_seq_++, kind, a, stamp});
  } else {
    events_.push(Event{time, next_seq_++, kind, a, stamp});
  }
}

void Engine::HandleArrival(TaskSlot slot) {
  Task& t = tasks_[slot];
  if (t.state_ == Task::State::kExited) {
    return;  // killed before it arrived
  }
  SFS_CHECK(t.state_ == Task::State::kNew);
  const sched::ThreadId tid = t.tid();
  const Action first = t.behavior().Next(now_);
  switch (first.kind) {
    case Action::Kind::kCompute: {
      SFS_CHECK(first.duration > 0);
      t.remaining_burst_ = first.duration;
      t.state_ = Task::State::kRunnable;
      scheduler_.AddThread(tid, t.weight(), t.home_cpu_);
      NotifySchedEvent(SchedEvent::kArrival, t);
      PlaceRunnable(tid, config_.preempt_on_arrival);
      break;
    }
    case Action::Kind::kBlock: {
      // Arrive asleep: register with the scheduler, then block immediately.
      SFS_CHECK(first.duration > 0);
      scheduler_.AddThread(tid, t.weight(), t.home_cpu_);
      NotifySchedEvent(SchedEvent::kArrival, t);
      scheduler_.Block(tid);
      NotifySchedEvent(SchedEvent::kBlock, t);
      t.state_ = Task::State::kBlocked;
      Push(now_ + first.duration, EventKind::kWakeup, static_cast<std::int32_t>(slot));
      break;
    }
    case Action::Kind::kExit:
      t.state_ = Task::State::kExited;
      if (exit_hook_) {
        exit_hook_(*this, t);
      }
      break;
  }
}

void Engine::HandleWakeup(TaskSlot slot) {
  Task& t = tasks_[slot];
  if (t.state_ == Task::State::kExited) {
    return;  // killed while blocked; stale wakeup
  }
  SFS_CHECK(t.state_ == Task::State::kBlocked);
  const sched::ThreadId tid = t.tid();
  t.state_ = Task::State::kRunnable;
  scheduler_.Wakeup(tid);
  NotifySchedEvent(SchedEvent::kWakeup, t);
  t.behavior().OnWake(now_);
  // The wake decides what to do next (usually a compute burst to serve a request).
  if (t.remaining_burst_ <= 0) {
    const Action next = t.behavior().Next(now_);
    switch (next.kind) {
      case Action::Kind::kCompute:
        SFS_CHECK(next.duration > 0);
        t.remaining_burst_ = next.duration;
        break;
      case Action::Kind::kBlock:
        SFS_CHECK(next.duration > 0);
        scheduler_.Block(tid);
        NotifySchedEvent(SchedEvent::kBlock, t);
        t.state_ = Task::State::kBlocked;
        Push(now_ + next.duration, EventKind::kWakeup, static_cast<std::int32_t>(slot));
        return;
      case Action::Kind::kExit:
        scheduler_.RemoveThread(tid);
        NotifySchedEvent(SchedEvent::kDeparture, t);
        t.state_ = Task::State::kExited;
        if (exit_hook_) {
          exit_hook_(*this, t);
        }
        return;
    }
  }
  PlaceRunnable(tid, /*may_preempt=*/true);
}

void Engine::HandleCpuTimer(sched::CpuId cpu_id, std::uint64_t stamp) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  if (stamp != cpu.timer_stamp || cpu.running == sched::kInvalidThread) {
    return;  // superseded by an earlier charge/dispatch
  }
  StopRunning(cpu_id);
  Dispatch(cpu_id);
}

void Engine::HandlePeriodic(std::size_t idx) {
  SFS_CHECK(idx < periodic_hooks_.size());
  periodic_hooks_[idx].fn(*this);
  Push(now_ + periodic_hooks_[idx].period, EventKind::kPeriodic, static_cast<std::int32_t>(idx));
}

void Engine::PlaceRunnable(sched::ThreadId tid, bool may_preempt) {
  // Idle processors first.  A dispatch can legitimately come up empty (a
  // sharded scheduler with stealing disabled only serves its own shard), so
  // keep trying the remaining idle processors until one accepts work.
  for (sched::CpuId cpu_id = 0; cpu_id < scheduler_.num_cpus(); ++cpu_id) {
    Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
    if (cpu.running == sched::kInvalidThread) {
      Dispatch(cpu_id);
      if (cpu.running != sched::kInvalidThread) {
        return;
      }
    }
  }
  if (!may_preempt) {
    return;  // queued; it will compete at the next scheduling point
  }
  // All busy: ask the policy whether this wakeup warrants preemption, giving it
  // the tick handler's view of how long each runner has held its processor.
  // (Scratch vector reused across calls: no steady-state allocation.)
  preempt_elapsed_.assign(cpus_.size(), 0);
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    if (cpus_[i].running != sched::kInvalidThread) {
      preempt_elapsed_[i] = std::max<Tick>(0, now_ - cpus_[i].run_start);
    }
  }
  const sched::CpuId victim = scheduler_.SuggestPreemption(tid, preempt_elapsed_);
  if (victim == sched::kInvalidCpu) {
    return;
  }
  SFS_CHECK(cpus_[static_cast<std::size_t>(victim)].running != sched::kInvalidThread);
  ++preemptions_;
  if (trace_) [[unlikely]] {
    // Victim thread, preempting thread in arg; recorded on the victim's ring.
    trace_->Record(victim, obs::TraceEventKind::kPreempt, now_,
                   cpus_[static_cast<std::size_t>(victim)].running, tid);
  }
  StopRunning(victim);
  Dispatch(victim);
}

void Engine::StopRunning(sched::CpuId cpu_id) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  const sched::ThreadId tid = cpu.running;
  SFS_CHECK(tid != sched::kInvalidThread);
  Task& t = tasks_[cpu.running_slot];
  const Tick ran = std::max<Tick>(0, now_ - cpu.run_start);
  // Consume only the part of the switch window that actually elapsed (a
  // preemption can land inside it).
  total_ctx_cost_ += std::min(cpu.switch_cost, std::max<Tick>(0, now_ - cpu.dispatch_time));
  cpu.switch_cost = 0;
  scheduler_.Charge(tid, ran);
  t.service_ += ran;
  t.remaining_burst_ = std::max<Tick>(0, t.remaining_burst_ - ran);
  t.state_ = Task::State::kRunnable;
  if (run_interval_hook_ && ran > 0) {
    run_interval_hook_(cpu.run_start, ran, cpu_id, tid);
  }
  if (trace_) [[unlikely]] {
    trace_->Record(cpu_id, obs::TraceEventKind::kCharge, now_, tid, ran);
    if (ran > 0) {
      trace_->Record(cpu_id, obs::TraceEventKind::kRun, cpu.run_start, tid, ran);
    }
  }
  if (run_hist_ && ran > 0) [[unlikely]] {
    run_hist_->Record(0, ran);  // single-threaded engine: shard 0
  }
  cpu.last_thread = tid;
  cpu.running = sched::kInvalidThread;
  cpu.idle_since = now_;
  ++cpu.timer_stamp;  // invalidate any outstanding timer

  if (t.remaining_burst_ == 0) {
    // The compute burst completed exactly when the thread stopped: consult the
    // behaviour for the next action (new burst, block, or exit).
    ApplyNextAction(t);
  } else {
    // Quantum expiry or preemption: the thread stays runnable mid-burst.
    t.behavior().OnPreempt(now_);
  }
}

void Engine::Dispatch(sched::CpuId cpu_id) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  SFS_CHECK(cpu.running == sched::kInvalidThread);
  const std::int64_t scheduler_steals_before = scheduler_.steals();
  const sched::ThreadId tid = scheduler_.PickNext(cpu_id);
  steals_ += scheduler_.steals() - scheduler_steals_before;
  if (tid == sched::kInvalidThread) {
    // Stay idle; idle_since was set when the CPU was freed (or at start).
    return;
  }
  const TaskSlot slot = SlotFor(tid);
  Task& t = tasks_[slot];
  SFS_CHECK(t.state_ == Task::State::kRunnable);
  SFS_CHECK(t.remaining_burst_ > 0);

  if (cpu.idle_since >= 0) {
    cpu.idle_accum += now_ - cpu.idle_since;
    cpu.idle_since = -1;
  }

  Tick switch_cost = 0;
  if (cpu.last_thread != tid) {
    ++context_switches_;
    switch_cost = config_.context_switch_cost;
    if (config_.cache_restore_per_kb > 0 && t.working_set_kb_ > 0) {
      // Cache-cold on another CPU: full restore; returning to its own CPU
      // after other tasks ran there: half.
      const Tick full = config_.cache_restore_per_kb * t.working_set_kb_;
      switch_cost += (t.last_cpu_ == cpu_id) ? full / 2 : full;
    }
  }
  if (t.last_cpu_ != sched::kInvalidCpu && t.last_cpu_ != cpu_id) {
    ++migrations_;
  }
  t.last_cpu_ = cpu_id;
  ++dispatches_;

  const Tick quantum = scheduler_.QuantumFor(tid);
  SFS_CHECK(quantum > 0);

  t.state_ = Task::State::kRunning;
  cpu.running = tid;
  cpu.running_slot = slot;
  cpu.dispatch_time = now_;
  cpu.switch_cost = switch_cost;
  cpu.run_start = now_ + switch_cost;
  cpu.quantum_end = cpu.run_start + quantum;
  cpu.burst_end = cpu.run_start + std::min(t.remaining_burst_, kTickInfinity);
  ++cpu.timer_stamp;
  Push(std::min(cpu.quantum_end, cpu.burst_end), EventKind::kCpuTimer, cpu_id, cpu.timer_stamp);
  if (trace_) [[unlikely]] {
    trace_->Record(cpu_id, obs::TraceEventKind::kGrant, now_, tid, quantum);
  }
  if (quantum_hist_) [[unlikely]] {
    quantum_hist_->Record(0, quantum);  // single-threaded engine: shard 0
  }
  t.behavior().OnDispatch(now_);
}

bool Engine::ApplyNextAction(Task& t) {
  const Action action = t.behavior().Next(now_);
  switch (action.kind) {
    case Action::Kind::kCompute:
      SFS_CHECK(action.duration > 0);
      t.remaining_burst_ = action.duration;
      return true;
    case Action::Kind::kBlock:
      SFS_CHECK(action.duration > 0);
      scheduler_.Block(t.tid());
      NotifySchedEvent(SchedEvent::kBlock, t);
      t.state_ = Task::State::kBlocked;
      Push(now_ + action.duration, EventKind::kWakeup, static_cast<std::int32_t>(t.slot_));
      return false;
    case Action::Kind::kExit:
      scheduler_.RemoveThread(t.tid());
      NotifySchedEvent(SchedEvent::kDeparture, t);
      t.state_ = Task::State::kExited;
      if (exit_hook_) {
        exit_hook_(*this, t);
      }
      return false;
  }
  SFS_CHECK(false);
  return false;
}

}  // namespace sfs::sim

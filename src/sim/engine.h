// Discrete-event SMP simulator.
//
// Substitute for the paper's dual-processor Pentium III testbed (DESIGN.md,
// "Substitutions").  The engine models p processors driving any sched::Scheduler
// through the exact kernel protocol of Section 3.1:
//
//   * each processor independently dispatches, runs its thread until the quantum
//     expires or the thread blocks/exits, then charges the scheduler with the
//     *actual* time used (quanta on different CPUs are not synchronized);
//   * arrivals and wakeups dispatch to an idle processor immediately, or consult
//     Scheduler::SuggestPreemption (the reschedule_idle() analogue);
//   * an optional per-switch context-switch cost consumes processor time that is
//     credited to no thread;
//   * every state change is reported to optional observers so experiments can
//     mirror the event stream into the GMS fluid reference or sample service
//     time-series (Figures 4 and 5 plot exactly those series).
//
// The engine is single-threaded and deterministic: simultaneous events fire in
// insertion order.
//
// Hot-path layout (DESIGN.md, "Engine internals"): the event queue is a
// hierarchical timing wheel with pooled nodes, tasks live in a dense slot
// arena indexed by the events themselves, and observer hooks are null-checked
// once per notification — steady-state simulation performs no allocations in
// the event loop.  A binary-heap event queue is retained behind
// EngineConfig::event_queue for differential testing; both backends pop in
// (time, insertion-seq) order, so traces are byte-identical across them.

#ifndef SFS_SIM_ENGINE_H_
#define SFS_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/slot_arena.h"
#include "src/common/time.h"
#include "src/common/timing_wheel.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sched/scheduler.h"
#include "src/sim/task.h"

namespace sfs::sim {

// Event-queue backend.  The timing wheel is the production default (O(1) per
// event); the (time, seq) binary heap is the reference the wheel is
// differentially tested against (tests/integration/event_queue_fuzz_test.cc,
// abl_engine_throughput).
enum class EventQueueKind : std::uint8_t {
  kTimingWheel,
  kPriorityQueue,
};

struct EngineConfig {
  // CPU time consumed by switching a processor to a *different* thread; modelled
  // as uncredited processor time before the new thread starts (Table 1 measures
  // the real-code analogue).
  Tick context_switch_cost = 0;

  // Cache-restore model (Table 1's "restoration of the cache state becomes the
  // dominating factor"): dispatching a task with a working set costs extra
  // uncredited time per KiB — full when cache-cold (last ran elsewhere), half
  // when returning to its own CPU after other tasks polluted it, zero when it
  // is re-dispatched back-to-back.  0 disables the model.
  Tick cache_restore_per_kb = 0;

  // Whether a *newly arrived* thread may preempt a running one.  Linux 2.2 calls
  // reschedule_idle() from wake_up_process() for forked children as well as for
  // wakeups, so the faithful default is true; experiments with rapid arrival
  // chains (Figure 5) are mildly sensitive to it, hence the explicit knob.
  bool preempt_on_arrival = true;

  // Event-queue backend; schedules are identical across the two, only the
  // constant factors differ.
  EventQueueKind event_queue = EventQueueKind::kTimingWheel;

  // Wheel backend only: drain each tick's slot FIFO as a detached batch
  // (TimingWheel::DrainCurrent) instead of one NextTime()/PopFront() round trip
  // per event.  Dispatch order is identical either way — the batch IS the
  // per-tick FIFO — so schedules and fingerprints do not depend on this knob;
  // it exists for differential testing (abl_engine_throughput's
  // timing_wheel_unbatched config) and as an escape hatch.
  bool batch_drain = true;

  // Observability sink (sim-tick clock domain).  When set, the engine records
  // grants, preemptions, run intervals, charges and lifecycle events into the
  // trace's rings and also hands the trace to the scheduler (steal/rebalance/
  // readjust records).  Recording never feeds back into scheduling decisions,
  // so schedules and fingerprints are byte-identical with tracing on or off;
  // the nullptr path costs one predicted branch per instrumentation point
  // (the NotifySchedEvent contract).
  obs::Trace* trace = nullptr;

  // Sim-time histogram sink.  When set, the engine records every granted
  // quantum into "sim/quantum_ticks" and every completed run interval into
  // "sim/run_interval_ticks" (both in ticks).  These are pure functions of
  // the workload and seed — unlike the executor's wall-clock histograms they
  // belong in the Reporter's deterministic section.  Same cost contract as
  // `trace`: one predicted branch per site when null.
  obs::MetricsRegistry* metrics = nullptr;
};

// Scheduler-visible lifecycle events, for mirroring into GmsReference etc.
enum class SchedEvent { kArrival, kDeparture, kBlock, kWakeup };

class Engine {
 public:
  Engine(sched::Scheduler& scheduler, EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- workload setup ---------------------------------------------------------

  // Schedules `task` to arrive (become runnable) at absolute time `at` >= now.
  void AddTaskAt(Tick at, std::unique_ptr<Task> task);

  // Pre-sizes the task arena, the tid index and the event-queue node pool for
  // a workload of about `task_count` tasks.  Purely an allocation hint —
  // growth past it is handled — meant to be called at workload-setup time so
  // the measured region allocates nothing.
  void ReserveTasks(std::size_t task_count);

  // Registers `fn` to run every `period` ticks of simulated time (first firing at
  // now + period).  Used for service sampling.
  void AddPeriodicHook(Tick period, std::function<void(Engine&)> fn);

  // Called when a task exits; may add new tasks (e.g. the Figure 5 short-job
  // chain: "each short task was introduced only after the previous one finished").
  void SetExitHook(std::function<void(Engine&, Task&)> fn);

  // Observes every scheduler-visible lifecycle event (for the GMS mirror).
  // The no-observer configuration pays a single branch per event.
  void SetSchedEventHook(std::function<void(SchedEvent, const Task&, Tick)> fn);

  // Observes every completed run interval: (start, length, cpu, tid).  Used by
  // sim::TraceRecorder for spurt analysis.
  void SetRunIntervalHook(std::function<void(Tick, Tick, sched::CpuId, sched::ThreadId)> fn);

  // --- execution ---------------------------------------------------------------

  // Runs the simulation until `until` (inclusive of events at `until`).
  void RunUntil(Tick until);

  // Terminates a task immediately (the kill(1) analogue used when an experiment
  // "stops" a thread, e.g. T2 at t=30s in Figure 4).  Charges and removes it
  // from the scheduler in whatever state it is, then refills its processor.
  void KillTask(sched::ThreadId tid);

  // --- introspection -----------------------------------------------------------

  Tick now() const { return now_; }
  sched::Scheduler& scheduler() { return scheduler_; }

  // Task lookup; valid for exited tasks until the engine is destroyed.
  const Task& task(sched::ThreadId tid) const;
  Task& task(sched::ThreadId tid);
  bool HasTask(sched::ThreadId tid) const;

  // Cumulative CPU service of a task in ticks (survives task exit).
  Tick Service(sched::ThreadId tid) const { return task(tid).service(); }

  // Like Service(), but includes the uncharged time of an in-flight quantum, so
  // samplers observe smooth progress rather than 200 ms staircases.
  Tick ServiceIncludingRunning(sched::ThreadId tid) const;

  // Iterates all tasks ever added (any state), in arrival-insertion order.
  template <typename Fn>
  void ForEachTask(Fn&& fn) const {
    tasks_.ForEach(fn);
  }

  std::int64_t context_switches() const { return context_switches_; }
  std::int64_t dispatches() const { return dispatches_; }
  std::int64_t preemptions() const { return preemptions_; }
  // Events popped off the event queue so far (arrivals, wakeups, CPU timers —
  // including superseded ones — and periodic-hook firings).  The denominator
  // of the engine-throughput benchmarks.
  std::int64_t events_processed() const { return events_processed_; }
  // Dispatches that moved a task to a different processor than it last ran on
  // (cache-cold starts; the affinity extension reduces these).
  std::int64_t migrations() const { return migrations_; }
  // Idle-pull steals the scheduler performed while serving this engine's
  // dispatches (sharded policies; zero for flat schedulers).
  std::int64_t steals() const { return steals_; }
  // Processor time consumed by context switches so far, including the consumed
  // part of any in-flight switch window (so the capacity identity
  // service + idle + switch cost == p * elapsed holds at any instant).
  Tick total_context_switch_cost() const;
  Tick idle_time() const;

 private:
  using TaskSlot = common::SlotArena<Task>::SlotId;

  enum class EventKind : std::uint8_t { kArrival, kWakeup, kCpuTimer, kPeriodic };

  struct Event {
    Tick time = 0;
    std::uint64_t seq = 0;  // FIFO tie-break for equal timestamps (heap backend)
    EventKind kind = EventKind::kArrival;
    std::int32_t a = 0;      // task slot (arrival/wakeup), cpu (timer), hook idx (periodic)
    std::uint64_t stamp = 0;  // timer generation (kCpuTimer)

    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  struct Cpu {
    sched::ThreadId running = sched::kInvalidThread;
    TaskSlot running_slot = 0;  // arena slot of `running` (valid iff running)
    sched::ThreadId last_thread = sched::kInvalidThread;
    Tick dispatch_time = 0;  // when the dispatch began (switch window start)
    Tick switch_cost = 0;    // cost of the in-flight switch window
    Tick run_start = 0;      // when the current thread began accruing service
    Tick quantum_end = 0;    // absolute preemption deadline
    Tick burst_end = 0;      // absolute completion of the thread's compute burst
    std::uint64_t timer_stamp = 0;  // invalidates superseded timer events
    Tick idle_since = 0;
    Tick idle_accum = 0;
  };

  struct PeriodicHook {
    Tick period = 0;
    std::function<void(Engine&)> fn;
  };

  // tid -> arena slot; CHECK-fails on unknown tid.
  TaskSlot SlotFor(sched::ThreadId tid) const;

  void Push(Tick time, EventKind kind, std::int32_t a, std::uint64_t stamp = 0);
  void DispatchEvent(const Event& ev);
  void HandleArrival(TaskSlot slot);
  void HandleWakeup(TaskSlot slot);
  void HandleCpuTimer(sched::CpuId cpu_id, std::uint64_t stamp);
  void HandlePeriodic(std::size_t idx);

  // Makes a newly runnable thread run somewhere if it should: idle CPU first,
  // then (if `may_preempt`) the scheduler's preemption suggestion.
  void PlaceRunnable(sched::ThreadId tid, bool may_preempt);

  // Charges the thread running on `cpu_id` for the time used, frees the CPU, and
  // applies the behaviour's next action if its compute burst just completed.
  void StopRunning(sched::CpuId cpu_id);

  // Picks and starts the next thread on a free CPU (or marks it idle).
  void Dispatch(sched::CpuId cpu_id);

  // Applies the behaviour's next action for a task that just finished a burst or
  // arrived.  Returns true if the task is (still) runnable and has compute to do.
  bool ApplyNextAction(Task& task);

  // Single-branch observer notifications (the common no-observer case pays
  // one predictable test, no std::function invocation machinery).  SchedEvent
  // and TraceEventKind share their first four enumerators, so the lifecycle
  // trace record is a straight cast.
  void NotifySchedEvent(SchedEvent event, const Task& task) {
    if (sched_event_hook_) {
      sched_event_hook_(event, task, now_);
    }
    if (trace_) [[unlikely]] {
      trace_->RecordLifecycle(static_cast<obs::TraceEventKind>(event), now_, task.tid());
    }
  }

  sched::Scheduler& scheduler_;
  EngineConfig config_;
  obs::Trace* trace_;  // == config_.trace; nullptr when tracing is off
  // Resolved from config_.metrics at construction (registry lookups lock;
  // the event loop must not).  Null when metrics are off.
  obs::LogHistogram* quantum_hist_ = nullptr;
  obs::LogHistogram* run_hist_ = nullptr;
  bool use_wheel_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;

  common::TimingWheel<Event> wheel_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  common::SlotArena<Task> tasks_;
  // ThreadId -> arena slot (-1 = unknown tid).  ThreadIds are dense small
  // integers in practice (sched/types.h), so a flat vector beats a hash map.
  std::vector<std::int32_t> tid_to_slot_;
  std::vector<Cpu> cpus_;
  std::vector<PeriodicHook> periodic_hooks_;
  std::vector<Tick> preempt_elapsed_;  // reused scratch for SuggestPreemption

  std::function<void(Engine&, Task&)> exit_hook_;
  std::function<void(SchedEvent, const Task&, Tick)> sched_event_hook_;
  std::function<void(Tick, Tick, sched::CpuId, sched::ThreadId)> run_interval_hook_;

  std::int64_t context_switches_ = 0;
  std::int64_t dispatches_ = 0;
  std::int64_t preemptions_ = 0;
  std::int64_t migrations_ = 0;
  std::int64_t steals_ = 0;
  std::int64_t events_processed_ = 0;
  Tick total_ctx_cost_ = 0;
};

}  // namespace sfs::sim

#endif  // SFS_SIM_ENGINE_H_

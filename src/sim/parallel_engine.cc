#include "src/sim/parallel_engine.h"

#include <algorithm>
#include <bit>
#include <thread>
#include <utility>

#include "src/common/assert.h"
#include "src/sched/sharded.h"

namespace sfs::sim {

// The handlers below are sim::Engine's, restructured so that at workers > 1
// every scheduler call runs under the lock class the thread-safety contract
// (scheduler.h) assigns it, and every Task-field write precedes the scheduler
// call that makes the task grabbable by a peer worker.  Two reorderings
// relative to the serial engine make that possible, both observably identical
// on the serial path because Behavior calls depend only on `now`:
//
//   * the behaviour's next action is peeked *before* the scheduler sequence,
//     so the handler knows up front whether it needs a dispatch lock (compute,
//     block) or the full lifecycle lock (exit — a structural removal);
//   * task fields (service, burst, state) are finalized before Charge/Wakeup
//     publish the task, so a peer shard stealing it immediately afterwards
//     reads settled values (the release/acquire pair is the shard mutex).
//
// Every hook stream a fingerprint can hash — run intervals, lifecycle events,
// trace ring contents — is emitted in exactly the serial engine's order.

ParallelEngine::ParallelEngine(sched::Scheduler& scheduler, ParallelEngineConfig config)
    : scheduler_(scheduler),
      sharded_(dynamic_cast<sched::ShardedScheduler*>(&scheduler)),
      config_(config),
      trace_(config.trace),
      locked_(config.workers > 1) {
  SFS_CHECK(config_.workers >= 1);
  SFS_CHECK(config_.workers <= scheduler.num_cpus());
  SFS_CHECK(config_.epoch > 0);
  steals_at_ctor_ = scheduler_.steals();
  const int num_cpus = scheduler.num_cpus();
  cpus_.resize(static_cast<std::size_t>(num_cpus));
  for (auto& cpu : cpus_) {
    cpu.idle_since = 0;
  }
  if (trace_ != nullptr) {
    SFS_CHECK(trace_->num_cpus() >= num_cpus);
    scheduler_.SetTrace(trace_);
    if (locked_) {
      trace_->EnsureWorkerLifecycleRings(config_.workers);
    }
  }
  if (config.metrics != nullptr) {
    if (locked_) {
      // Workers record into distinct histogram shards; the registry must have
      // been built wide enough (MetricsRegistry(num_shards)).
      SFS_CHECK(config.metrics->num_shards() >= config_.workers);
    }
    quantum_hist_ = &config.metrics->GetHistogram("sim/quantum_ticks");
    run_hist_ = &config.metrics->GetHistogram("sim/run_interval_ticks");
  }
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  owner_of_cpu_.resize(static_cast<std::size_t>(num_cpus), 0);
  for (int w = 0; w < config_.workers; ++w) {
    auto worker = std::make_unique<Worker>(config_.workers);
    worker->id = w;
    worker->cpu_begin = static_cast<sched::CpuId>(
        (static_cast<std::int64_t>(w) * num_cpus) / config_.workers);
    worker->cpu_end = static_cast<sched::CpuId>(
        (static_cast<std::int64_t>(w + 1) * num_cpus) / config_.workers);
    worker->preempt_elapsed.reserve(cpus_.size());
    for (sched::CpuId cpu = worker->cpu_begin; cpu < worker->cpu_end; ++cpu) {
      owner_of_cpu_[static_cast<std::size_t>(cpu)] = w;
    }
    workers_.push_back(std::move(worker));
  }
}

ParallelEngine::~ParallelEngine() = default;

void ParallelEngine::AddTaskAt(Tick at, std::unique_ptr<Task> task) {
  SFS_CHECK(!parallel_running_);  // workers > 1: quiescent only
  SFS_CHECK(at >= now_);
  SFS_CHECK(task != nullptr);
  const sched::ThreadId tid = task->tid();
  SFS_CHECK(tid >= 0);
  if (static_cast<std::size_t>(tid) >= tid_to_slot_.size()) {
    tid_to_slot_.reserve(std::bit_ceil(static_cast<std::size_t>(tid) + 1));
    tid_to_slot_.resize(static_cast<std::size_t>(tid) + 1, -1);
  }
  SFS_CHECK(tid_to_slot_[static_cast<std::size_t>(tid)] < 0);  // duplicate tid
  const TaskSlot slot = tasks_.Emplace(std::move(*task));
  Task& t = tasks_[slot];
  t.slot_ = slot;
  tid_to_slot_[static_cast<std::size_t>(tid)] = static_cast<std::int32_t>(slot);
  if (trace_ && !t.label().empty()) {
    trace_->SetThreadName(tid, t.label() + " T" + std::to_string(tid));
  }
  // Arrival routing: the worker owning the home shard processes the arrival
  // (so a hinted, partitioned workload is a disjoint union of per-worker
  // subproblems); hintless tasks round-robin for balance.
  int owner = 0;
  if (t.home_cpu_ >= 0 && t.home_cpu_ < scheduler_.num_cpus()) {
    owner = OwnerOf(t.home_cpu_);
  } else {
    owner = static_cast<int>(arrival_rr_++ % static_cast<std::uint64_t>(config_.workers));
  }
  Push(*workers_[static_cast<std::size_t>(owner)], at, EventKind::kArrival,
       static_cast<std::int32_t>(slot));
}

void ParallelEngine::ReserveTasks(std::size_t task_count) {
  SFS_CHECK(!parallel_running_);
  tasks_.Reserve(task_count);
  tid_to_slot_.reserve(task_count + 1);
  for (auto& w : workers_) {
    const std::size_t owned = static_cast<std::size_t>(w->cpu_end - w->cpu_begin);
    w->wheel.Reserve(task_count / static_cast<std::size_t>(config_.workers) +
                     2 * owned + 16);
  }
}

void ParallelEngine::AddPeriodicHook(Tick period, std::function<void(ParallelEngine&)> fn) {
  SFS_CHECK(config_.workers == 1);  // would race every worker's clock
  SFS_CHECK(period > 0);
  periodic_hooks_.push_back({period, std::move(fn)});
  Push(*workers_[0], now_ + period, EventKind::kPeriodic,
       static_cast<std::int32_t>(periodic_hooks_.size() - 1));
}

void ParallelEngine::SetExitHook(std::function<void(ParallelEngine&, Task&)> fn) {
  exit_hook_ = std::move(fn);
}

void ParallelEngine::SetSchedEventHook(
    std::function<void(int, SchedEvent, const Task&, Tick)> fn) {
  sched_event_hook_ = std::move(fn);
}

void ParallelEngine::SetRunIntervalHook(
    std::function<void(int, Tick, Tick, sched::CpuId, sched::ThreadId)> fn) {
  run_interval_hook_ = std::move(fn);
}

void ParallelEngine::RunUntil(Tick until) {
  SFS_CHECK(until >= now_);
  if (!locked_) {
    // Serial oracle path: the exact sim::Engine loop (batched wheel drain) on
    // the calling thread.
    Worker& w = *workers_[0];
    Tick t = 0;
    while (w.wheel.NextTime(until, &t)) {
      SFS_DCHECK(t >= w.now);
      w.now = t;
      now_ = t;
      w.wheel.DrainCurrent([this, &w](const Event& ev) { DispatchEvent(w, ev); });
    }
    w.now = until;
    now_ = until;
    return;
  }
  SFS_CHECK(periodic_hooks_.empty());
  parallel_running_ = true;
  EpochBarrier barrier(config_.workers);
  const Tick start = now_;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config_.workers - 1));
  for (int w = 1; w < config_.workers; ++w) {
    threads.emplace_back([this, &barrier, w, start, until] {
      RunWorker(*workers_[static_cast<std::size_t>(w)], start, until, barrier);
    });
  }
  RunWorker(*workers_[0], start, until, barrier);
  for (auto& thread : threads) {
    thread.join();
  }
  now_ = until;
  parallel_running_ = false;
}

void ParallelEngine::RunWorker(Worker& w, Tick start, Tick until, EpochBarrier& barrier) {
  Tick epoch_start = start;
  while (true) {
    const Tick bound = std::min(epoch_start + config_.epoch - 1, until);
    w.now = epoch_start;
    // Mail sent during the previous epoch is ordered before this drain by the
    // barrier; clamping to the epoch start keeps the wheel monotone (the
    // bounded cross-worker time skew the determinism contract documents).
    DrainMail(w, epoch_start);
    IdleKick(w);
    RunLocal(w, bound);
    w.now = bound;
    barrier.ArriveAndWait([this, bound] {
      // Single-threaded window: every worker is parked.
      scheduler_.OnEpochBoundary(bound);
      ++epochs_;
      if (trace_) [[unlikely]] {
        trace_->PublishNow(bound);
      }
    });
    if (bound >= until) {
      return;
    }
    epoch_start = bound + 1;
  }
}

void ParallelEngine::RunLocal(Worker& w, Tick bound) {
  Tick t = 0;
  while (w.wheel.NextTime(bound, &t)) {
    SFS_DCHECK(t >= w.now);
    w.now = t;
    w.wheel.DrainCurrent([this, &w](const Event& ev) { DispatchEvent(w, ev); });
  }
}

void ParallelEngine::DrainMail(Worker& w, Tick epoch_start) {
  // Source order is fixed, and each mailbox preserves its producer's FIFO, so
  // delivery order is deterministic given the mail contents.
  for (auto& box : w.mail) {
    box.DrainAll([this, &w, epoch_start](Mail&& m) {
      Push(w, std::max(m.time, epoch_start), EventKind::kWakeup,
           static_cast<std::int32_t>(m.slot), static_cast<std::uint64_t>(m.home));
    });
  }
}

void ParallelEngine::IdleKick(Worker& w) {
  // Bound cross-worker placement latency: work made runnable (or stealable)
  // by another worker's events gets a dispatch attempt every epoch.  In a
  // partitioned run every idle owned CPU's shard is empty, so the kick picks
  // nothing and perturbs nothing.
  for (sched::CpuId cpu = w.cpu_begin; cpu < w.cpu_end; ++cpu) {
    if (cpus_[static_cast<std::size_t>(cpu)].running == sched::kInvalidThread) {
      Dispatch(w, cpu);
    }
  }
}

void ParallelEngine::DispatchEvent(Worker& w, const Event& ev) {
  ++w.events_processed;
  if (trace_) [[unlikely]] {
    // Exact on the serial path; at workers > 1 the hint is some worker's
    // clock, within one epoch of any record stamped with it.
    trace_->PublishNow(w.now);
  }
  switch (ev.kind) {
    case EventKind::kArrival:
      HandleArrival(w, static_cast<TaskSlot>(ev.a));
      break;
    case EventKind::kWakeup:
      HandleWakeup(w, static_cast<TaskSlot>(ev.a), static_cast<sched::CpuId>(ev.stamp));
      break;
    case EventKind::kCpuTimer:
      HandleCpuTimer(w, ev.a, ev.stamp);
      break;
    case EventKind::kPeriodic:
      HandlePeriodic(w, static_cast<std::size_t>(ev.a));
      break;
  }
}

ParallelEngine::TaskSlot ParallelEngine::SlotFor(sched::ThreadId tid) const {
  SFS_CHECK(tid >= 0 && static_cast<std::size_t>(tid) < tid_to_slot_.size());
  const std::int32_t slot = tid_to_slot_[static_cast<std::size_t>(tid)];
  SFS_CHECK(slot >= 0);
  return static_cast<TaskSlot>(slot);
}

const Task& ParallelEngine::task(sched::ThreadId tid) const { return tasks_[SlotFor(tid)]; }

Task& ParallelEngine::task(sched::ThreadId tid) { return tasks_[SlotFor(tid)]; }

bool ParallelEngine::HasTask(sched::ThreadId tid) const {
  return tid >= 0 && static_cast<std::size_t>(tid) < tid_to_slot_.size() &&
         tid_to_slot_[static_cast<std::size_t>(tid)] >= 0;
}

Tick ParallelEngine::ServiceIncludingRunning(sched::ThreadId tid) const {
  const Task& t = task(tid);
  Tick service = t.service();
  if (t.state() == Task::State::kRunning) {
    for (const auto& cpu : cpus_) {
      if (cpu.running == tid) {
        service += std::max<Tick>(0, now_ - cpu.run_start);
        break;
      }
    }
  }
  return service;
}

Tick ParallelEngine::total_context_switch_cost() const {
  Tick total = 0;
  for (const auto& w : workers_) {
    total += w->total_ctx_cost;
  }
  for (const auto& cpu : cpus_) {
    if (cpu.running != sched::kInvalidThread) {
      total += std::min(cpu.switch_cost, std::max<Tick>(0, now_ - cpu.dispatch_time));
    }
  }
  return total;
}

Tick ParallelEngine::idle_time() const {
  Tick total = 0;
  for (const auto& cpu : cpus_) {
    total += cpu.idle_accum;
    if (cpu.running == sched::kInvalidThread && cpu.idle_since >= 0) {
      total += now_ - cpu.idle_since;
    }
  }
  return total;
}

void ParallelEngine::Push(Worker& w, Tick time, EventKind kind, std::int32_t a,
                          std::uint64_t stamp) {
  SFS_DCHECK(time >= w.now);
  w.wheel.Push(time, Event{time, w.next_seq++, kind, a, stamp});
}

void ParallelEngine::PushWakeup(Worker& w, TaskSlot slot, Tick time, sched::CpuId home) {
  // Flat schedulers have no shards: any worker may process the wakeup under
  // the one global dispatch mutex, so it stays local.
  const int target = (locked_ && sharded_ != nullptr) ? OwnerOf(home) : w.id;
  if (target == w.id) {
    Push(w, time, EventKind::kWakeup, static_cast<std::int32_t>(slot),
         static_cast<std::uint64_t>(home));
    return;
  }
  ++w.mailed_wakeups;
  workers_[static_cast<std::size_t>(target)]->mail[static_cast<std::size_t>(w.id)].Push(
      Mail{slot, time, home});
}

void ParallelEngine::KillTask(sched::ThreadId tid) {
  SFS_CHECK(!parallel_running_);  // workers > 1: quiescent only
  Task& t = task(tid);
  SFS_CHECK(t.state_ != Task::State::kExited);
  sched::CpuId freed = sched::kInvalidCpu;
  switch (t.state_) {
    case Task::State::kRunning: {
      for (sched::CpuId cpu_id = 0; cpu_id < scheduler_.num_cpus(); ++cpu_id) {
        if (cpus_[static_cast<std::size_t>(cpu_id)].running == tid) {
          StopRunning(*workers_[static_cast<std::size_t>(OwnerOf(cpu_id))], cpu_id);
          freed = cpu_id;
          break;
        }
      }
      break;
    }
    case Task::State::kNew:
      t.state_ = Task::State::kExited;
      return;
    default:
      break;
  }
  Worker& w = *workers_[0];
  if (t.state_ == Task::State::kBlocked) {
    scheduler_.Wakeup(tid);
    NotifySchedEvent(w, SchedEvent::kWakeup, t);
    t.state_ = Task::State::kRunnable;
  }
  if (t.state_ != Task::State::kExited) {
    scheduler_.RemoveThread(tid);
    NotifySchedEvent(w, SchedEvent::kDeparture, t);
    t.state_ = Task::State::kExited;
    if (exit_hook_) {
      exit_hook_(*this, t);
    }
  }
  if (freed != sched::kInvalidCpu) {
    Dispatch(*workers_[static_cast<std::size_t>(OwnerOf(freed))], freed);
  }
}

void ParallelEngine::HandleArrival(Worker& w, TaskSlot slot) {
  Task& t = tasks_[slot];
  if (t.state_ == Task::State::kExited) {
    return;  // killed before it arrived
  }
  SFS_CHECK(t.state_ == Task::State::kNew);
  const sched::ThreadId tid = t.tid();
  const Action first = t.behavior().Next(w.now);
  switch (first.kind) {
    case Action::Kind::kCompute: {
      SFS_CHECK(first.duration > 0);
      // Fields first: AddThread publishes the task to peer dispatchers.
      t.remaining_burst_ = first.duration;
      t.state_ = Task::State::kRunnable;
      sched::CpuId home = t.home_cpu_;
      {
        auto guard = LockLifecycleIf();
        scheduler_.AddThread(tid, t.weight_, t.home_cpu_);
        NotifySchedEvent(w, SchedEvent::kArrival, t);
        if (locked_ && sharded_ != nullptr) {
          home = sharded_->ShardOf(tid);  // where the policy actually put it
        }
      }
      PlaceRunnable(w, tid, home, config_.preempt_on_arrival);
      break;
    }
    case Action::Kind::kBlock: {
      // Arrive asleep: register, then block immediately.  The whole sequence
      // sits under the lifecycle lock, so the momentarily-runnable task is
      // never grabbable.
      SFS_CHECK(first.duration > 0);
      sched::CpuId home = w.cpu_begin;
      {
        auto guard = LockLifecycleIf();
        scheduler_.AddThread(tid, t.weight_, t.home_cpu_);
        NotifySchedEvent(w, SchedEvent::kArrival, t);
        scheduler_.Block(tid);
        NotifySchedEvent(w, SchedEvent::kBlock, t);
        t.state_ = Task::State::kBlocked;
        if (sharded_ != nullptr) {
          // The wakeup must run on the worker owning this shard — the one
          // cross-worker mail source of a hinted workload gone unhinted.
          home = sharded_->ShardOf(tid);
        }
      }
      PushWakeup(w, slot, w.now + first.duration, home);
      break;
    }
    case Action::Kind::kExit:
      t.state_ = Task::State::kExited;
      if (exit_hook_) {
        exit_hook_(*this, t);
      }
      break;
  }
}

void ParallelEngine::HandleWakeup(Worker& w, TaskSlot slot, sched::CpuId home) {
  Task& t = tasks_[slot];
  if (t.state_ == Task::State::kExited) {
    return;  // killed while blocked; stale wakeup
  }
  SFS_CHECK(t.state_ == Task::State::kBlocked);
  const sched::ThreadId tid = t.tid();
  if (home < 0 || home >= scheduler_.num_cpus()) {
    home = w.cpu_begin;  // flat-policy wakeups carry no shard; any mutex works
  }
  // Peek the behaviour first (it depends only on `now`): the arm decides
  // which lock class the scheduler sequence below needs.
  t.behavior().OnWake(w.now);
  bool has_action = false;
  Action next{};
  if (t.remaining_burst_ <= 0) {
    next = t.behavior().Next(w.now);
    has_action = true;
  }
  if (has_action && next.kind == Action::Kind::kBlock) {
    SFS_CHECK(next.duration > 0);
    {
      auto guard = LockDispatchIf(home);
      t.state_ = Task::State::kRunnable;
      scheduler_.Wakeup(tid);
      NotifySchedEvent(w, SchedEvent::kWakeup, t);
      scheduler_.Block(tid);
      NotifySchedEvent(w, SchedEvent::kBlock, t);
      t.state_ = Task::State::kBlocked;
    }
    PushWakeup(w, slot, w.now + next.duration, home);
    return;
  }
  if (has_action && next.kind == Action::Kind::kExit) {
    {
      // Structural removal: full lifecycle lock (it also covers the Wakeup).
      auto guard = LockLifecycleIf();
      t.state_ = Task::State::kRunnable;
      scheduler_.Wakeup(tid);
      NotifySchedEvent(w, SchedEvent::kWakeup, t);
      scheduler_.RemoveThread(tid);
      NotifySchedEvent(w, SchedEvent::kDeparture, t);
      t.state_ = Task::State::kExited;
    }
    if (exit_hook_) {
      exit_hook_(*this, t);
    }
    return;
  }
  if (has_action) {
    SFS_CHECK(next.kind == Action::Kind::kCompute && next.duration > 0);
    t.remaining_burst_ = next.duration;
  }
  {
    auto guard = LockDispatchIf(home);
    t.state_ = Task::State::kRunnable;
    scheduler_.Wakeup(tid);
    NotifySchedEvent(w, SchedEvent::kWakeup, t);
  }
  PlaceRunnable(w, tid, home, /*may_preempt=*/true);
}

void ParallelEngine::HandleCpuTimer(Worker& w, sched::CpuId cpu_id, std::uint64_t stamp) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  if (stamp != cpu.timer_stamp || cpu.running == sched::kInvalidThread) {
    return;  // superseded by an earlier charge/dispatch
  }
  StopRunning(w, cpu_id);
  Dispatch(w, cpu_id);
}

void ParallelEngine::HandlePeriodic(Worker& w, std::size_t idx) {
  SFS_CHECK(idx < periodic_hooks_.size());
  periodic_hooks_[idx].fn(*this);
  Push(w, w.now + periodic_hooks_[idx].period, EventKind::kPeriodic,
       static_cast<std::int32_t>(idx));
}

void ParallelEngine::PlaceRunnable(Worker& w, sched::ThreadId tid, sched::CpuId home,
                                   bool may_preempt) {
  // Idle owned processors first (the serial engine scans all processors; the
  // confinement to owned ones is the engine's one placement divergence at
  // workers > 1, bounded by the peers' epoch idle-kicks).
  for (sched::CpuId cpu_id = w.cpu_begin; cpu_id < w.cpu_end; ++cpu_id) {
    Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
    if (cpu.running == sched::kInvalidThread) {
      Dispatch(w, cpu_id);
      if (cpu.running != sched::kInvalidThread) {
        return;
      }
    }
  }
  if (!may_preempt) {
    return;
  }
  w.preempt_elapsed.assign(cpus_.size(), 0);
  for (sched::CpuId cpu_id = w.cpu_begin; cpu_id < w.cpu_end; ++cpu_id) {
    const Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
    if (cpu.running != sched::kInvalidThread) {
      w.preempt_elapsed[static_cast<std::size_t>(cpu_id)] =
          std::max<Tick>(0, w.now - cpu.run_start);
    }
  }
  sched::CpuId victim = sched::kInvalidCpu;
  {
    auto guard = LockDispatchIf(home);
    // Re-validate under the re-acquired lock: between the wakeup/arrival
    // path's release of home's dispatch mutex and this hold, a peer may have
    // stolen the now-runnable thread to another shard (the probe would then
    // read a shard whose mutex we do not hold) or run it to exit.  Both
    // membership and the home shard are exact under home's mutex — every
    // write that moves a thread onto or off a shard holds that shard's lock.
    // A stolen or exited thread simply forgoes the advisory probe; the
    // serial path (locked_ == false) short-circuits the check entirely.
    const bool still_home =
        !locked_ || (scheduler_.Contains(tid) &&
                     (sharded_ == nullptr || sharded_->ShardOf(tid) == home));
    if (still_home) {
      victim = scheduler_.SuggestPreemption(tid, w.preempt_elapsed);
    }
  }
  if (victim == sched::kInvalidCpu) {
    return;
  }
  if (locked_ && OwnerOf(victim) != w.id) {
    return;  // cross-worker preemption forgone; the victim's own timer decides
  }
  SFS_CHECK(cpus_[static_cast<std::size_t>(victim)].running != sched::kInvalidThread);
  ++w.preemptions;
  if (trace_) [[unlikely]] {
    trace_->Record(victim, obs::TraceEventKind::kPreempt, w.now,
                   cpus_[static_cast<std::size_t>(victim)].running, tid);
  }
  StopRunning(w, victim);
  Dispatch(w, victim);
}

void ParallelEngine::StopRunning(Worker& w, sched::CpuId cpu_id) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  const sched::ThreadId tid = cpu.running;
  SFS_CHECK(tid != sched::kInvalidThread);
  const TaskSlot slot = cpu.running_slot;
  Task& t = tasks_[slot];
  const Tick ran = std::max<Tick>(0, w.now - cpu.run_start);
  w.total_ctx_cost += std::min(cpu.switch_cost, std::max<Tick>(0, w.now - cpu.dispatch_time));
  cpu.switch_cost = 0;
  const Tick new_burst = std::max<Tick>(0, t.remaining_burst_ - ran);
  const bool finished = new_burst == 0;
  // Behaviour peeked before Charge publishes the task (see the file comment);
  // a preempted thread likewise learns of the preemption before a peer can
  // redispatch it and call OnDispatch.
  Action next{};
  if (finished) {
    next = t.behavior().Next(w.now);
  } else {
    t.behavior().OnPreempt(w.now);
  }
  t.service_ += ran;
  t.remaining_burst_ = new_burst;
  t.state_ = Task::State::kRunnable;
  if (!finished || next.kind == Action::Kind::kCompute) {
    if (finished) {
      SFS_CHECK(next.duration > 0);
      t.remaining_burst_ = next.duration;
    }
    auto guard = LockDispatchIf(cpu_id);
    scheduler_.Charge(tid, ran);
  } else if (next.kind == Action::Kind::kBlock) {
    SFS_CHECK(next.duration > 0);
    {
      // Charge-then-Block is atomic under the shard mutex, or a peer could
      // dispatch the thread in between (scheduler.h's contract).  After
      // running on `cpu_id` the entity lives on that shard, so the wakeup's
      // home is known without a table read.
      auto guard = LockDispatchIf(cpu_id);
      scheduler_.Charge(tid, ran);
      scheduler_.Block(tid);
      NotifySchedEvent(w, SchedEvent::kBlock, t);
      t.state_ = Task::State::kBlocked;
    }
    PushWakeup(w, slot, w.now + next.duration, cpu_id);
  } else {
    // Exit: a structural removal needs the full lifecycle lock, which also
    // sanctions the Charge.
    auto guard = LockLifecycleIf();
    scheduler_.Charge(tid, ran);
    scheduler_.RemoveThread(tid);
    NotifySchedEvent(w, SchedEvent::kDeparture, t);
    t.state_ = Task::State::kExited;
  }
  if (run_interval_hook_ && ran > 0) {
    run_interval_hook_(w.id, cpu.run_start, ran, cpu_id, tid);
  }
  if (trace_) [[unlikely]] {
    trace_->Record(cpu_id, obs::TraceEventKind::kCharge, w.now, tid, ran);
    if (ran > 0) {
      trace_->Record(cpu_id, obs::TraceEventKind::kRun, cpu.run_start, tid, ran);
    }
  }
  if (run_hist_ && ran > 0) [[unlikely]] {
    run_hist_->Record(locked_ ? w.id : 0, ran);
  }
  cpu.last_thread = tid;
  cpu.running = sched::kInvalidThread;
  cpu.idle_since = w.now;
  ++cpu.timer_stamp;  // invalidate any outstanding timer
  if (finished && next.kind == Action::Kind::kExit && exit_hook_) {
    exit_hook_(*this, t);
  }
}

void ParallelEngine::Dispatch(Worker& w, sched::CpuId cpu_id) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_id)];
  SFS_CHECK(cpu.running == sched::kInvalidThread);
  sched::ThreadId tid = sched::kInvalidThread;
  Tick quantum = 0;
  {
    auto guard = LockDispatchIf(cpu_id);
    tid = scheduler_.PickNext(cpu_id);
    if (tid != sched::kInvalidThread) {
      quantum = scheduler_.QuantumFor(tid);
    }
  }
  if (tid == sched::kInvalidThread) {
    return;  // stay idle; idle_since was set when the CPU was freed
  }
  // Marked running under the dispatch lock: the task is exclusively this
  // worker's until its next Charge, so the field writes below are unshared.
  const TaskSlot slot = SlotFor(tid);
  Task& t = tasks_[slot];
  SFS_CHECK(t.state_ == Task::State::kRunnable);
  SFS_CHECK(t.remaining_burst_ > 0);
  SFS_CHECK(quantum > 0);

  if (cpu.idle_since >= 0) {
    cpu.idle_accum += w.now - cpu.idle_since;
    cpu.idle_since = -1;
  }

  Tick switch_cost = 0;
  if (cpu.last_thread != tid) {
    ++w.context_switches;
    switch_cost = config_.context_switch_cost;
    if (config_.cache_restore_per_kb > 0 && t.working_set_kb_ > 0) {
      const Tick full = config_.cache_restore_per_kb * t.working_set_kb_;
      switch_cost += (t.last_cpu_ == cpu_id) ? full / 2 : full;
    }
  }
  if (t.last_cpu_ != sched::kInvalidCpu && t.last_cpu_ != cpu_id) {
    ++w.migrations;
  }
  t.last_cpu_ = cpu_id;
  ++w.dispatches;

  t.state_ = Task::State::kRunning;
  cpu.running = tid;
  cpu.running_slot = slot;
  cpu.dispatch_time = w.now;
  cpu.switch_cost = switch_cost;
  cpu.run_start = w.now + switch_cost;
  cpu.quantum_end = cpu.run_start + quantum;
  cpu.burst_end = cpu.run_start + std::min(t.remaining_burst_, kTickInfinity);
  ++cpu.timer_stamp;
  Push(w, std::min(cpu.quantum_end, cpu.burst_end), EventKind::kCpuTimer, cpu_id,
       cpu.timer_stamp);
  if (trace_) [[unlikely]] {
    trace_->Record(cpu_id, obs::TraceEventKind::kGrant, w.now, tid, quantum);
  }
  if (quantum_hist_) [[unlikely]] {
    quantum_hist_->Record(locked_ ? w.id : 0, quantum);
  }
  t.behavior().OnDispatch(w.now);
}

}  // namespace sfs::sim

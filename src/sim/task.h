// Simulated tasks and their workload behaviours.
//
// A Task is one schedulable thread in the discrete-event simulator.  What the
// task *does* — compute, block on I/O, exit — is described by a Behavior state
// machine, queried by the engine whenever the previous action completes.  The
// workload models from the paper's evaluation (Inf, Interact, mpeg_play, gcc,
// disksim, dhrystone; Section 4.1) are Behavior implementations in src/workload.

#ifndef SFS_SIM_TASK_H_
#define SFS_SIM_TASK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/time.h"
#include "src/sched/types.h"

namespace sfs::sim {

// What a task does next, as reported by its Behavior.
struct Action {
  enum class Kind {
    kCompute,  // needs `duration` ticks of CPU before the next decision
    kBlock,    // sleeps for `duration` ticks (I/O, think time), then wakes
    kExit,     // terminates
  };

  Kind kind = Kind::kCompute;
  Tick duration = 0;

  static Action Compute(Tick d) { return {Kind::kCompute, d}; }
  static Action Block(Tick d) { return {Kind::kBlock, d}; }
  static Action Exit() { return {Kind::kExit, 0}; }
};

// Workload state machine.  The engine calls Next() when the task arrives and
// whenever the current action finishes; the notification hooks let behaviours
// measure latency (e.g. Interact's response time).
class Behavior {
 public:
  virtual ~Behavior();

  virtual Action Next(Tick now) = 0;

  // The task just became runnable after a block.
  virtual void OnWake(Tick now) { (void)now; }

  // The task was handed a processor / lost it (quantum expiry or preemption).
  virtual void OnDispatch(Tick now) { (void)now; }
  virtual void OnPreempt(Tick now) { (void)now; }
};

// One schedulable thread.
class Task {
 public:
  Task(sched::ThreadId tid, sched::Weight weight, std::unique_ptr<Behavior> behavior,
       std::string label = {});

  sched::ThreadId tid() const { return tid_; }
  sched::Weight weight() const { return weight_; }
  const std::string& label() const;
  Behavior& behavior() { return *behavior_; }

  // Cumulative CPU service received (kept here so it survives task exit).
  Tick service() const { return service_; }

  enum class State { kNew, kRunnable, kRunning, kBlocked, kExited };
  State state() const { return state_; }

  // Processor that last ran this task (engine view); kInvalidCpu before the
  // first dispatch.  Used for migration accounting.
  sched::CpuId last_cpu() const { return last_cpu_; }

  // Working-set size in KiB for the engine's cache-restore model (see
  // EngineConfig::cache_restore_per_kb).  Set before handing the task to the
  // engine.
  int working_set_kb() const { return working_set_kb_; }
  void set_working_set_kb(int kb) { working_set_kb_ = kb; }

  // Home-CPU placement hint, forwarded to Scheduler::AddThread at arrival.
  // Partition-aware policies admit the thread to this shard instead of their
  // load-balanced choice, making placement a pure function of the workload
  // (the parallel engine's partitioned determinism contract; it also decides
  // which simulation worker owns the arrival).  kInvalidCpu (default) keeps
  // the scheduler's own placement.  Set before handing the task to the engine.
  sched::CpuId home_cpu() const { return home_cpu_; }
  void set_home_cpu(sched::CpuId cpu) { home_cpu_ = cpu; }

 private:
  friend class Engine;
  friend class ParallelEngine;

  // Hot fields first: the engine's per-event path (StopRunning / Dispatch /
  // the Handle* switch) touches these and nothing below behavior_, so they
  // share the task's first cache line in the slot arena.
  State state_ = State::kNew;
  // Dense arena slot the engine filed this task under (set by AddTaskAt);
  // events carry this id so hot-path lookup is a vector index, not a map probe.
  std::uint32_t slot_ = 0;
  sched::ThreadId tid_;
  sched::CpuId last_cpu_ = sched::kInvalidCpu;
  // CPU ticks left in the current compute action (kTickInfinity for Inf-style).
  Tick remaining_burst_ = 0;
  Tick service_ = 0;
  sched::Weight weight_;
  int working_set_kb_ = 0;
  // Occupies what was the pre-behavior_ padding hole, so the one-line
  // static_assert below still holds.
  sched::CpuId home_cpu_ = sched::kInvalidCpu;
  std::unique_ptr<Behavior> behavior_;
  // Cold: read once at registration (trace thread name) and by reporting
  // paths; boxed so an unlabelled task pays a pointer, not an inline
  // std::string, and the whole Task fits one cache line.  null <=> empty.
  std::unique_ptr<std::string> label_;
};

// The arena-resident task is the densest engine structure after the event
// nodes; keep it within a single 64-byte cache line.
static_assert(sizeof(Task) <= 64, "Task outgrew one cache line");

}  // namespace sfs::sim

#endif  // SFS_SIM_TASK_H_

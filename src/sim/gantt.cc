#include "src/sim/gantt.h"

#include <algorithm>
#include <map>

#include "src/common/assert.h"

namespace sfs::sim {

std::string RenderGantt(const TraceRecorder& trace, const GanttOptions& options) {
  SFS_CHECK(options.width > 0);
  Tick to = options.to;
  if (to == 0) {
    for (const auto& interval : trace.intervals()) {
      to = std::max(to, interval.start + interval.length);
    }
  }
  const Tick from = options.from;
  if (to <= from) {
    return "";
  }
  const double slice = static_cast<double>(to - from) / options.width;

  // Per-requested-thread occupancy per column.
  std::map<sched::ThreadId, std::vector<double>> occupancy;
  for (const auto& [tid, label] : options.rows) {
    occupancy[tid].assign(static_cast<std::size_t>(options.width), 0.0);
  }
  for (const auto& interval : trace.intervals()) {
    auto it = occupancy.find(interval.tid);
    if (it == occupancy.end()) {
      continue;
    }
    const Tick lo = std::max(from, interval.start);
    const Tick hi = std::min(to, interval.start + interval.length);
    if (hi <= lo) {
      continue;
    }
    auto first = static_cast<int>(static_cast<double>(lo - from) / slice);
    auto last = static_cast<int>(static_cast<double>(hi - from - 1) / slice);
    first = std::clamp(first, 0, options.width - 1);
    last = std::clamp(last, 0, options.width - 1);
    for (int col = first; col <= last; ++col) {
      const double col_lo = static_cast<double>(from) + slice * col;
      const double col_hi = col_lo + slice;
      const double overlap = std::min(static_cast<double>(hi), col_hi) -
                             std::max(static_cast<double>(lo), col_lo);
      if (overlap > 0) {
        it->second[static_cast<std::size_t>(col)] += overlap / slice;
      }
    }
  }

  std::size_t label_width = 0;
  for (const auto& [tid, label] : options.rows) {
    label_width = std::max(label_width, label.size());
  }

  std::string out;
  for (const auto& [tid, label] : options.rows) {
    out += label;
    out.append(label_width - label.size(), ' ');
    out += " |";
    for (double x : occupancy[tid]) {
      if (x < 0.01) {
        out += ' ';
      } else if (x < 0.25) {
        out += '.';
      } else if (x < 0.75) {
        out += ':';
      } else {
        out += '#';
      }
    }
    out += "|\n";
  }
  return out;
}

}  // namespace sfs::sim

#include "src/sim/trace.h"

#include <algorithm>

namespace sfs::sim {

TraceRecorder::TraceRecorder(Engine& engine) {
  engine.SetRunIntervalHook([this](Tick start, Tick length, sched::CpuId cpu,
                                   sched::ThreadId tid) { Record(start, length, cpu, tid); });
}

void TraceRecorder::Record(Tick start, Tick length, sched::CpuId cpu, sched::ThreadId tid) {
  intervals_.push_back({start, length, cpu, tid});
  SpurtState& s = spurts_[tid];
  if (s.last_end == start && s.last_cpu == cpu) {
    // Seamless continuation on the same CPU: the spurt goes on.
    s.current += length;
  } else {
    s.current = length;
    ++s.count;
  }
  s.max = std::max(s.max, s.current);
  s.last_end = start + length;
  s.last_cpu = cpu;
}

Tick TraceRecorder::MaxSpurt(sched::ThreadId tid) const {
  auto it = spurts_.find(tid);
  return it == spurts_.end() ? 0 : it->second.max;
}

Tick TraceRecorder::MaxSpurtInRange(sched::ThreadId lo, sched::ThreadId hi) const {
  Tick best = 0;
  for (auto it = spurts_.lower_bound(lo); it != spurts_.end() && it->first <= hi; ++it) {
    best = std::max(best, it->second.max);
  }
  return best;
}

std::int64_t TraceRecorder::SpurtCount(sched::ThreadId tid) const {
  auto it = spurts_.find(tid);
  return it == spurts_.end() ? 0 : it->second.count;
}

}  // namespace sfs::sim

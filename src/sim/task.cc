#include "src/sim/task.h"

#include <utility>

namespace sfs::sim {

Behavior::~Behavior() = default;

Task::Task(sched::ThreadId tid, sched::Weight weight, std::unique_ptr<Behavior> behavior,
           std::string label)
    : tid_(tid),
      weight_(weight),
      behavior_(std::move(behavior)),
      label_(label.empty() ? nullptr : std::make_unique<std::string>(std::move(label))) {}

const std::string& Task::label() const {
  static const std::string kEmpty;
  return label_ == nullptr ? kEmpty : *label_;
}

}  // namespace sfs::sim

#include "src/sim/task.h"

#include <utility>

namespace sfs::sim {

Behavior::~Behavior() = default;

Task::Task(sched::ThreadId tid, sched::Weight weight, std::unique_ptr<Behavior> behavior,
           std::string label)
    : tid_(tid), weight_(weight), behavior_(std::move(behavior)), label_(std::move(label)) {}

}  // namespace sfs::sim

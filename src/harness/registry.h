// Benchmark-experiment registry.
//
// Each figure/table/ablation of the paper registers itself as a named
// experiment at static-initialization time; the single `sfs_bench` binary
// lists, filters and runs them through harness::RunBenchMain.  An experiment
// declares its name, the scheduler(s) under test, a repetition/warmup policy,
// and a body that reports results through a Reporter.

#ifndef SFS_HARNESS_REGISTRY_H_
#define SFS_HARNESS_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

namespace sfs::harness {

class Reporter;

struct ExperimentSpec {
  // Unique registry key, e.g. "fig6a_proportional"; `--filter` matches on
  // substrings of this.
  std::string name = {};

  // One-line human description printed by `--list` and embedded in the JSON.
  std::string description = {};

  // Canonical sched::SchedKindName()s exercised by the experiment, for
  // provenance in the JSON document.
  std::vector<std::string> schedulers = {};

  // Measured repetitions recorded in the output (overridable with --repeat).
  int repetitions = 1;

  // Discarded warm-up executions before the measured repetitions; only
  // wall-clock experiments need a nonzero value.
  int warmup = 0;

  // True when the recorded metrics are a pure function of --seed (no
  // wall-clock measurements), i.e. reruns are byte-identical.
  bool deterministic = true;
};

using ExperimentFn = void (*)(Reporter&);

struct Experiment {
  ExperimentSpec spec;
  ExperimentFn fn = nullptr;
};

class Registry {
 public:
  static Registry& Instance();

  // Registers an experiment; aborts on a duplicate name (two translation units
  // claiming the same experiment is a build error, not a runtime condition).
  void Register(ExperimentSpec spec, ExperimentFn fn);

  const Experiment* Find(std::string_view name) const;

  // Experiments whose name contains `filter` (empty matches all), in
  // lexicographic name order — the order experiments run and serialize in.
  std::vector<const Experiment*> Match(std::string_view filter) const;

  std::size_t size() const { return experiments_.size(); }

 private:
  Registry() = default;
  std::vector<Experiment> experiments_;  // kept sorted by spec.name
};

struct Registrar {
  Registrar(ExperimentSpec spec, ExperimentFn fn);
};

}  // namespace sfs::harness

// Defines and registers an experiment body:
//
//   SFS_EXPERIMENT(fig3_heuristic,
//                  .description = "Figure 3: heuristic accuracy",
//                  .schedulers = {"sfs"}) {
//     reporter.Metric("accuracy_pct", ...);
//   }
//
// Designated initializers after the name must follow ExperimentSpec field
// order (C++20).
#define SFS_EXPERIMENT(id, ...)                                            \
  static void SfsExperimentBody_##id(::sfs::harness::Reporter& reporter);  \
  static const ::sfs::harness::Registrar sfs_experiment_registrar_##id(    \
      ::sfs::harness::ExperimentSpec{.name = #id, __VA_ARGS__},            \
      &SfsExperimentBody_##id);                                            \
  static void SfsExperimentBody_##id(                                      \
      [[maybe_unused]] ::sfs::harness::Reporter& reporter)

#endif  // SFS_HARNESS_REGISTRY_H_

// Experiment runner and reporting surface for the sfs_bench binary.
//
// The runner executes registry experiments selected by --filter, honoring each
// spec's warmup/repetition policy, and assembles one schema-versioned JSON
// document (json_writer.h) across all runs.  Determinism contract: everything
// recorded through Metric()/Set()/Counters() must be a pure function of
// --seed, so same-seed reruns are byte-identical; wall-clock measurements go
// through Timing(), which reaches the JSON only under --timing (off by
// default) precisely because it breaks that contract.

#ifndef SFS_HARNESS_RUNNER_H_
#define SFS_HARNESS_RUNNER_H_

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "src/harness/json_writer.h"
#include "src/harness/registry.h"
#include "src/obs/metrics.h"

namespace sfs::sim {
class Engine;
}  // namespace sfs::sim

namespace sfs::harness {

// JSON schema version; bump when the document layout changes incompatibly.
inline constexpr int kJsonSchemaVersion = 1;

// Handed to each experiment execution: experiments write human-readable output
// to out() and machine-readable results through the recording methods.
class Reporter {
 public:
  Reporter(std::ostream& human_out, std::uint64_t seed, int repetition, bool timing_enabled,
           std::string trace_path = {});

  // Human-readable stream (tables, banners).  Never parsed; may interleave
  // freely with other experiments' output.
  std::ostream& out() { return human_out_; }

  // Base RNG seed for this run (--seed).  Experiments derive any per-trial
  // seeds from this value so that --seed fully determines the JSON document.
  std::uint64_t seed() const { return seed_; }

  // 0-based measured-repetition index (warmup runs use -1 and are discarded).
  int repetition() const { return repetition_; }

  bool timing_enabled() const { return timing_enabled_; }

  // --trace destination, or empty when tracing is off.  Tracing-capable
  // experiments export a Perfetto JSON here on repetition 0; intended to be
  // combined with --filter so exactly one experiment owns the file.  The path
  // never enters the JSON document, so a traced run's document is
  // byte-identical to an untraced one.
  const std::string& trace_path() const { return trace_path_; }

  // --- deterministic results (always in the JSON) -----------------------------
  void Metric(std::string_view key, double value);
  void Metric(std::string_view key, std::int64_t value);
  void Metric(std::string_view key, int value) { Metric(key, static_cast<std::int64_t>(value)); }
  void Metric(std::string_view key, std::string_view value);
  void Set(std::string_view key, JsonValue value);

  // Records the engine's counters (dispatches, context switches, preemptions,
  // migrations, idle and switch-cost ticks) under `key`; all deterministic.
  void Counters(std::string_view key, const sim::Engine& engine);

  // Serializes a histogram snapshot as {count, mean, min, max, p50, p99, p999}
  // under `key`.  Use for SIM-TIME histograms only (quantum lengths,
  // run-interval lengths): their contents are a pure function of --seed, so
  // they belong in the deterministic section.
  void Histogram(std::string_view key, const obs::HistogramSnapshot& snapshot);

  // As Histogram, but under "timing" (dropped without --timing).  Use for
  // wall-clock histograms: dispatch latency, lock wait, preempt latency.
  void TimingHistogram(std::string_view key, const obs::HistogramSnapshot& snapshot);

  // --- wall-clock results (JSON only with --timing) ---------------------------
  // `nanos_per_op` (or any wall-derived number) is recorded under
  // "timing"/`key` when timing is enabled and discarded otherwise.
  void Timing(std::string_view key, double value);

  // Event-loop throughput: records `<key>/ns_per_event` and
  // `<key>/events_per_sec` under "timing" from a count of processed events and
  // the wall-clock nanoseconds the run took.  The count itself is
  // deterministic and belongs in a Metric/Counters record; only the rates are
  // wall-derived, hence timing-gated.
  void Throughput(std::string_view key, std::int64_t events, double wall_ns);

  // The accumulated result object for this repetition.
  JsonValue TakeResult();

 private:
  // Shared {count, mean, min, max, p50, p99, p999} object builder.
  static JsonValue HistogramJson(const obs::HistogramSnapshot& snapshot);

  std::ostream& human_out_;
  std::uint64_t seed_;
  int repetition_;
  bool timing_enabled_;
  std::string trace_path_;
  JsonValue result_ = JsonValue::Object();
};

struct RunOptions {
  bool list = false;
  std::string filter;          // substring match on experiment names
  int repeat = 0;              // > 0 overrides each spec's repetitions
  std::uint64_t seed = 42;
  bool timing = false;         // include wall-clock numbers in the JSON
  std::string json_path;       // --json <path>: write the document here
  std::string trace_path;      // --trace <path>: Perfetto trace destination
  bool help = false;
};

// Parses sfs_bench flags (--list, --filter, --repeat, --seed, --timing,
// --json, --trace, --help).  Returns false (with a message on `err`) on bad
// usage.
bool ParseRunOptions(int argc, char** argv, RunOptions& options, std::ostream& err);

// Runs the selected experiments and (optionally) writes the JSON document.
// Returns a process exit code: 0 on success, 1 when the filter matches
// nothing, 2 on usage errors.
int RunBenchMain(int argc, char** argv);

// Builds the full document for the given options without touching the
// filesystem; exposed for the harness tests.
JsonValue RunExperimentsToJson(const RunOptions& options, std::ostream& human_out);

// --- microbenchmark helpers ---------------------------------------------------
// Replacement for the google-benchmark loops the overhead experiments
// (Figure 7, Table 1, ablation cost sweeps) were written against: calibrate the
// iteration count until the timed region exceeds `min_time`, then report
// nanoseconds per operation.  Wall-clock by nature — report via
// Reporter::Timing only.

template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

template <typename Fn>
double MeasureNsPerOp(Fn&& fn, std::chrono::nanoseconds min_time = std::chrono::milliseconds(20)) {
  using Clock = std::chrono::steady_clock;
  for (std::int64_t iters = 64;; iters *= 4) {
    const auto start = Clock::now();
    for (std::int64_t i = 0; i < iters; ++i) {
      fn();
    }
    const auto elapsed = Clock::now() - start;
    if (elapsed >= min_time || iters >= (std::int64_t{1} << 40)) {
      return static_cast<double>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
             static_cast<double>(iters);
    }
  }
}

}  // namespace sfs::harness

#endif  // SFS_HARNESS_RUNNER_H_

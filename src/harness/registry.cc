#include "src/harness/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/assert.h"

namespace sfs::harness {

Registry& Registry::Instance() {
  static Registry* registry = new Registry();
  return *registry;
}

void Registry::Register(ExperimentSpec spec, ExperimentFn fn) {
  SFS_CHECK(fn != nullptr);
  SFS_CHECK(!spec.name.empty());
  if (Find(spec.name) != nullptr) {
    std::fprintf(stderr, "duplicate experiment registration: %s\n", spec.name.c_str());
    std::abort();
  }
  const auto pos = std::lower_bound(
      experiments_.begin(), experiments_.end(), spec.name,
      [](const Experiment& e, const std::string& name) { return e.spec.name < name; });
  experiments_.insert(pos, Experiment{std::move(spec), fn});
}

const Experiment* Registry::Find(std::string_view name) const {
  for (const Experiment& e : experiments_) {
    if (e.spec.name == name) {
      return &e;
    }
  }
  return nullptr;
}

std::vector<const Experiment*> Registry::Match(std::string_view filter) const {
  std::vector<const Experiment*> out;
  for (const Experiment& e : experiments_) {
    if (filter.empty() || e.spec.name.find(filter) != std::string::npos) {
      out.push_back(&e);
    }
  }
  return out;
}

Registrar::Registrar(ExperimentSpec spec, ExperimentFn fn) {
  Registry::Instance().Register(std::move(spec), fn);
}

}  // namespace sfs::harness

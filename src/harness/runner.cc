#include "src/harness/runner.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/assert.h"
#include "src/sim/engine.h"

namespace sfs::harness {

Reporter::Reporter(std::ostream& human_out, std::uint64_t seed, int repetition,
                   bool timing_enabled, std::string trace_path)
    : human_out_(human_out),
      seed_(seed),
      repetition_(repetition),
      timing_enabled_(timing_enabled),
      trace_path_(std::move(trace_path)) {}

void Reporter::Metric(std::string_view key, double value) {
  result_.Set(std::string(key), JsonValue(value));
}

void Reporter::Metric(std::string_view key, std::int64_t value) {
  result_.Set(std::string(key), JsonValue(value));
}

void Reporter::Metric(std::string_view key, std::string_view value) {
  result_.Set(std::string(key), JsonValue(value));
}

void Reporter::Set(std::string_view key, JsonValue value) {
  result_.Set(std::string(key), std::move(value));
}

void Reporter::Counters(std::string_view key, const sim::Engine& engine) {
  JsonValue counters = JsonValue::Object();
  counters.Set("events", JsonValue(engine.events_processed()));
  counters.Set("dispatches", JsonValue(engine.dispatches()));
  counters.Set("context_switches", JsonValue(engine.context_switches()));
  counters.Set("preemptions", JsonValue(engine.preemptions()));
  counters.Set("migrations", JsonValue(engine.migrations()));
  counters.Set("steals", JsonValue(engine.steals()));
  counters.Set("idle_ticks", JsonValue(engine.idle_time()));
  counters.Set("context_switch_cost_ticks", JsonValue(engine.total_context_switch_cost()));
  result_.Set(std::string(key), std::move(counters));
}

JsonValue Reporter::HistogramJson(const obs::HistogramSnapshot& snapshot) {
  JsonValue h = JsonValue::Object();
  h.Set("count", JsonValue(static_cast<std::int64_t>(snapshot.count())));
  h.Set("mean", JsonValue(snapshot.mean()));
  h.Set("min", JsonValue(snapshot.min()));
  h.Set("max", JsonValue(snapshot.max()));
  h.Set("p50", JsonValue(snapshot.Percentile(50)));
  h.Set("p99", JsonValue(snapshot.Percentile(99)));
  h.Set("p999", JsonValue(snapshot.Percentile(99.9)));
  return h;
}

void Reporter::Histogram(std::string_view key, const obs::HistogramSnapshot& snapshot) {
  result_.Set(std::string(key), HistogramJson(snapshot));
}

void Reporter::TimingHistogram(std::string_view key,
                               const obs::HistogramSnapshot& snapshot) {
  if (!timing_enabled_) {
    return;
  }
  JsonValue* timing = result_.Find("timing");
  if (timing == nullptr) {
    timing = &result_.Set("timing", JsonValue::Object());
  }
  timing->Set(std::string(key), HistogramJson(snapshot));
}

void Reporter::Timing(std::string_view key, double value) {
  if (!timing_enabled_) {
    return;
  }
  JsonValue* timing = result_.Find("timing");
  if (timing == nullptr) {
    timing = &result_.Set("timing", JsonValue::Object());
  }
  timing->Set(std::string(key), JsonValue(value));
}

void Reporter::Throughput(std::string_view key, std::int64_t events, double wall_ns) {
  if (!timing_enabled_ || events <= 0) {
    return;
  }
  const std::string prefix(key);
  Timing(prefix + "/ns_per_event", wall_ns / static_cast<double>(events));
  Timing(prefix + "/events_per_sec",
         static_cast<double>(events) / (wall_ns * 1e-9));
}

JsonValue Reporter::TakeResult() {
  JsonValue out = std::move(result_);
  result_ = JsonValue::Object();
  return out;
}

namespace {

bool ParseUint64(std::string_view s, std::uint64_t& out) {
  const auto result = std::from_chars(s.data(), s.data() + s.size(), out);
  return result.ec == std::errc() && result.ptr == s.data() + s.size();
}

bool ParseInt(std::string_view s, int& out) {
  const auto result = std::from_chars(s.data(), s.data() + s.size(), out);
  return result.ec == std::errc() && result.ptr == s.data() + s.size();
}

constexpr std::string_view kUsage =
    "usage: sfs_bench [options]\n"
    "  --list             list registered experiments and exit\n"
    "  --filter SUBSTR    run only experiments whose name contains SUBSTR\n"
    "  --repeat N         override every experiment's repetition count\n"
    "  --seed S           base RNG seed (default 42); same seed => same JSON\n"
    "  --json PATH        write the schema-versioned JSON document to PATH\n"
    "  --timing           include wall-clock measurements in the JSON\n"
    "                     (non-deterministic; off by default)\n"
    "  --trace PATH       write a Perfetto (chrome trace-event) JSON to PATH;\n"
    "                     honored by tracing-capable experiments on their first\n"
    "                     repetition — combine with --filter.  Never affects\n"
    "                     the --json document\n"
    "  --help             show this message\n";

}  // namespace

bool ParseRunOptions(int argc, char** argv, RunOptions& options, std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    std::string_view value;
    bool has_inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline_value = true;
    }
    const auto take_value = [&](std::string_view flag) -> bool {
      if (has_inline_value) {
        return true;
      }
      if (i + 1 >= argc) {
        err << "sfs_bench: " << flag << " requires a value\n";
        return false;
      }
      value = argv[++i];
      return true;
    };
    const auto reject_value = [&](std::string_view flag) -> bool {
      if (has_inline_value) {
        err << "sfs_bench: " << flag << " does not take a value\n";
        return false;
      }
      return true;
    };
    if (arg == "--list") {
      if (!reject_value(arg)) {
        return false;
      }
      options.list = true;
    } else if (arg == "--timing") {
      if (!reject_value(arg)) {
        return false;
      }
      options.timing = true;
    } else if (arg == "--help" || arg == "-h") {
      if (!reject_value(arg)) {
        return false;
      }
      options.help = true;
    } else if (arg == "--filter") {
      if (!take_value(arg)) {
        return false;
      }
      options.filter = value;
    } else if (arg == "--json") {
      if (!take_value(arg)) {
        return false;
      }
      options.json_path = value;
    } else if (arg == "--trace") {
      if (!take_value(arg)) {
        return false;
      }
      options.trace_path = value;
    } else if (arg == "--repeat") {
      if (!take_value(arg)) {
        return false;
      }
      if (!ParseInt(value, options.repeat) || options.repeat <= 0) {
        err << "sfs_bench: --repeat expects a positive integer\n";
        return false;
      }
    } else if (arg == "--seed") {
      if (!take_value(arg)) {
        return false;
      }
      if (!ParseUint64(value, options.seed)) {
        err << "sfs_bench: --seed expects an unsigned integer\n";
        return false;
      }
    } else {
      err << "sfs_bench: unknown option '" << arg << "'\n" << kUsage;
      return false;
    }
  }
  return true;
}

JsonValue RunExperimentsToJson(const RunOptions& options, std::ostream& human_out) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue("sfs-bench"));
  doc.Set("schema_version", JsonValue(kJsonSchemaVersion));
  doc.Set("seed", JsonValue(options.seed));
  doc.Set("filter", JsonValue(options.filter));
  doc.Set("timing_included", JsonValue(options.timing));
  JsonValue experiments = JsonValue::Array();

  for (const Experiment* experiment : Registry::Instance().Match(options.filter)) {
    const ExperimentSpec& spec = experiment->spec;
    const int repetitions = options.repeat > 0 ? options.repeat : spec.repetitions;

    human_out << "### " << spec.name << " — " << spec.description << "\n";

    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue(spec.name));
    entry.Set("description", JsonValue(spec.description));
    JsonValue schedulers = JsonValue::Array();
    for (const std::string& s : spec.schedulers) {
      schedulers.Push(JsonValue(s));
    }
    entry.Set("schedulers", std::move(schedulers));
    entry.Set("deterministic", JsonValue(spec.deterministic));
    entry.Set("warmup", JsonValue(std::int64_t{spec.warmup}));
    entry.Set("repetitions", JsonValue(std::int64_t{repetitions}));

    // Warmup output is discarded along with its results, so the measured
    // tables are not preceded by identical-looking throwaway ones.
    for (int w = 0; w < spec.warmup; ++w) {
      std::ostream null_out(nullptr);
      Reporter warm(null_out, options.seed, /*repetition=*/-1, /*timing_enabled=*/false);
      experiment->fn(warm);
    }

    JsonValue runs = JsonValue::Array();
    for (int rep = 0; rep < repetitions; ++rep) {
      Reporter reporter(human_out, options.seed, rep, options.timing, options.trace_path);
      const auto start = std::chrono::steady_clock::now();
      experiment->fn(reporter);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      JsonValue result = reporter.TakeResult();
      if (options.timing) {
        result.Set("wall_ms",
                   JsonValue(std::chrono::duration<double, std::milli>(elapsed).count()));
      }
      runs.Push(std::move(result));
    }
    // Best-of-reps digest: with --timing and several repetitions, fold every
    // scalar timing key across the runs into {best, mean} so consumers get
    // the noise-robust minimum (what bench/compare_bench.py gates on)
    // alongside the mean without re-deriving either from the per-run arrays.
    if (options.timing && repetitions > 1) {
      struct Agg {
        std::string key;
        double best;
        double sum;
        int count;
      };
      std::vector<Agg> aggs;
      for (const JsonValue& run : runs.array_items()) {
        const JsonValue* timing = run.Find("timing");
        if (timing == nullptr || !timing->is_object()) {
          continue;
        }
        for (const auto& [key, value] : timing->object_items()) {
          if (!value.is_number()) {
            continue;  // histograms already carry their own summary
          }
          const double v = value.AsDouble();
          const auto it = std::find_if(aggs.begin(), aggs.end(),
                                       [&](const Agg& a) { return a.key == key; });
          if (it == aggs.end()) {
            aggs.push_back({key, v, v, 1});
          } else {
            it->best = std::min(it->best, v);
            it->sum += v;
            ++it->count;
          }
        }
      }
      if (!aggs.empty()) {
        JsonValue summary = JsonValue::Object();
        for (const Agg& a : aggs) {
          JsonValue cell = JsonValue::Object();
          cell.Set("best", JsonValue(a.best));
          cell.Set("mean", JsonValue(a.sum / a.count));
          summary.Set(a.key, std::move(cell));
        }
        entry.Set("timing_summary", std::move(summary));
      }
    }
    entry.Set("runs", std::move(runs));
    experiments.Push(std::move(entry));
    human_out << "\n";
  }
  doc.Set("experiments", std::move(experiments));
  return doc;
}

int RunBenchMain(int argc, char** argv) {
  RunOptions options;
  if (!ParseRunOptions(argc, argv, options, std::cerr)) {
    return 2;
  }
  if (options.help) {
    std::cout << kUsage;
    return 0;
  }
  if (options.list) {
    for (const Experiment* experiment : Registry::Instance().Match(options.filter)) {
      std::cout << experiment->spec.name << "  " << experiment->spec.description << "\n";
    }
    return 0;
  }
  const auto selected = Registry::Instance().Match(options.filter);
  if (selected.empty()) {
    std::cerr << "sfs_bench: no experiment matches filter '" << options.filter << "'\n";
    return 1;
  }

  // Open the output file before the (potentially long) run so a bad path
  // fails fast instead of after minutes of experiments.
  std::ofstream out;
  if (!options.json_path.empty()) {
    out.open(options.json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "sfs_bench: cannot open '" << options.json_path << "' for writing\n";
      return 1;
    }
  }

  JsonValue doc = RunExperimentsToJson(options, std::cout);

  if (!options.json_path.empty()) {
    doc.Write(out);
    out << "\n";
    if (!out.good()) {
      std::cerr << "sfs_bench: error writing '" << options.json_path << "'\n";
      return 1;
    }
    std::cout << "wrote " << options.json_path << " (" << selected.size() << " experiment"
              << (selected.size() == 1 ? "" : "s") << ")\n";
  }
  return 0;
}

}  // namespace sfs::harness

// Entry point for the unified sfs_bench binary.  All experiments live in
// bench/*.cc as SFS_EXPERIMENT registrations; this file only dispatches.

#include "src/harness/runner.h"

int main(int argc, char** argv) { return sfs::harness::RunBenchMain(argc, argv); }

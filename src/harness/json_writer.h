// Deterministic JSON document model for benchmark output.
//
// BENCH_*.json files are diffed across PRs, so serialization must be stable:
// objects preserve insertion order (no hash-map iteration), doubles print via
// shortest-round-trip std::to_chars, and indentation is fixed.  Two runs that
// record the same values produce byte-identical bytes.

#ifndef SFS_HARNESS_JSON_WRITER_H_
#define SFS_HARNESS_JSON_WRITER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sfs::harness {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}     // NOLINT
  JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}     // NOLINT
  JsonValue(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}  // NOLINT
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}    // NOLINT
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(std::string_view s) : kind_(Kind::kString), string_(s) {}        // NOLINT
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}             // NOLINT

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }
  // Numeric kinds only (is_number()); integers convert losslessly up to 2^53.
  double AsDouble() const {
    return kind_ == Kind::kDouble ? double_
           : kind_ == Kind::kInt  ? static_cast<double>(int_)
                                  : static_cast<double>(uint_);
  }

  // Read-only views for cross-run aggregation (the harness's timing summary);
  // order is insertion order, matching serialization.
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }

  // --- array ------------------------------------------------------------------
  JsonValue& Push(JsonValue v);
  std::size_t size() const;

  // --- object -----------------------------------------------------------------
  // Insert-or-assign; a replaced key keeps its original position so late
  // updates cannot perturb serialization order.
  JsonValue& Set(std::string key, JsonValue v);
  bool Has(std::string_view key) const;
  const JsonValue* Find(std::string_view key) const;
  JsonValue* Find(std::string_view key);

  // --- serialization ----------------------------------------------------------
  // Pretty-prints with 2-space indentation and '\n' line ends; `indent` is the
  // starting depth.  Output is locale-independent and deterministic.
  void Write(std::ostream& os, int indent = 0) const;
  std::string ToString() const;

  static void WriteEscaped(std::ostream& os, std::string_view s);
  // Shortest round-trip formatting; non-finite values serialize as null
  // (JSON has no NaN/Inf).
  static void WriteDouble(std::ostream& os, double v);

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace sfs::harness

#endif  // SFS_HARNESS_JSON_WRITER_H_

#include "src/harness/json_writer.h"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

#include "src/common/assert.h"

namespace sfs::harness {

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::Push(JsonValue v) {
  SFS_CHECK(kind_ == Kind::kArray);
  array_.push_back(std::move(v));
  return array_.back();
}

std::size_t JsonValue::size() const {
  switch (kind_) {
    case Kind::kArray:
      return array_.size();
    case Kind::kObject:
      return object_.size();
    default:
      return 0;
  }
}

JsonValue& JsonValue::Set(std::string key, JsonValue v) {
  SFS_CHECK(kind_ == Kind::kObject);
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
  return object_.back().second;
}

bool JsonValue::Has(std::string_view key) const { return Find(key) != nullptr; }

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

JsonValue* JsonValue::Find(std::string_view key) {
  return const_cast<JsonValue*>(static_cast<const JsonValue&>(*this).Find(key));
}

void JsonValue::WriteEscaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void JsonValue::WriteDouble(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  SFS_CHECK(result.ec == std::errc());
  os.write(buf, result.ptr - buf);
}

namespace {

// Integers go through to_chars as well: ostream operator<< applies the global
// locale's digit grouping, which would break both JSON validity and the
// byte-identical guarantee under a non-"C" locale.
template <typename Int>
void WriteInteger(std::ostream& os, Int v) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  SFS_CHECK(result.ec == std::errc());
  os.write(buf, result.ptr - buf);
}

}  // namespace

namespace {

void Indent(std::ostream& os, int depth) {
  for (int i = 0; i < depth; ++i) {
    os << "  ";
  }
}

}  // namespace

void JsonValue::Write(std::ostream& os, int indent) const {
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      WriteInteger(os, int_);
      break;
    case Kind::kUint:
      WriteInteger(os, uint_);
      break;
    case Kind::kDouble:
      WriteDouble(os, double_);
      break;
    case Kind::kString:
      WriteEscaped(os, string_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        Indent(os, indent + 1);
        array_[i].Write(os, indent + 1);
        os << (i + 1 < array_.size() ? ",\n" : "\n");
      }
      Indent(os, indent);
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        Indent(os, indent + 1);
        WriteEscaped(os, object_[i].first);
        os << ": ";
        object_[i].second.Write(os, indent + 1);
        os << (i + 1 < object_.size() ? ",\n" : "\n");
      }
      Indent(os, indent);
      os << '}';
      break;
    }
  }
}

std::string JsonValue::ToString() const {
  std::ostringstream os;
  Write(os);
  return os.str();
}

}  // namespace sfs::harness
